(** Schedule exploration and fault injection over the simulator.

    [run ~budget ~strategy prog] executes [prog] under [budget]
    controller-driven schedules.  Each schedule routes every
    nondeterministic decision in the stack — engine tie-breaks,
    preemption-timer offsets, KLT-pool picks, work-steal victims, and
    (with [~faults:true]) injected faults such as coalesced timer
    signals, KLT-pool exhaustion, spurious futex wakeups and worker
    stalls — through a {!Desim.Choice.t} controller, recording every
    decision into a {!Trail.t}.  The first schedule that raises
    {!Violation} (or deadlocks, or trips a runtime assertion) is
    greedily shrunk and reported as a deterministically replayable
    counterexample.

    Programs must be re-entrant: [prog] is invoked once per schedule and
    must build all its state (kernel, runtime, threads, locks) from the
    supplied {!env}. *)

(** Raised by oracles to report an invariant violation. *)
exception Violation of string

val violate : ('a, unit, string, 'b) format4 -> 'a
(** [violate fmt ...] raises {!Violation} with a formatted message. *)

val require : bool -> ('a, unit, string, unit) format4 -> 'a
(** [require ok fmt ...] raises {!Violation} unless [ok]. *)

(** {1 Programs under test} *)

type env = {
  eng : Desim.Engine.t;  (** fresh engine, controller already installed *)
  trace : Desim.Trace.t;  (** pass to [Kernel.create ~trace] for dumps *)
}

type program = {
  runtime : Preempt_core.Runtime.t option;
      (** watched by the deadlock oracle *)
  ults : Preempt_core.Ult.t list;  (** threads the deadlock oracle tracks *)
  cores : int;  (** for the violation-report trace dump; 0 = no dump *)
  oracle : unit -> unit;
      (** runs after the engine drains; raise {!Violation} on breakage *)
}

val program :
  ?runtime:Preempt_core.Runtime.t ->
  ?ults:Preempt_core.Ult.t list ->
  ?cores:int ->
  ?oracle:(unit -> unit) ->
  unit ->
  program

(** {1 Oracles} *)

(** Mutual-exclusion monitor: {!Excl.enter} raises {!Violation} as soon
    as two threads are inside the same critical section. *)
module Excl : sig
  type t

  val create : string -> t

  val enter : t -> unit

  val leave : t -> unit

  (** [critical t f] runs [f] inside the monitor (exception-safe). *)
  val critical : t -> (unit -> 'a) -> 'a

  (** Total number of completed {!enter} calls. *)
  val entries : t -> int
end

(** FIFO-fairness monitor for queue locks (ticket, MCS): the lock
    under test reports the order threads arrived and the order they
    were granted the lock; {!Fifo.check} raises {!Violation} if the
    two diverge. *)
module Fifo : sig
  type t

  val create : string -> t

  (** [arrived t k] records that request [k] joined the queue. *)
  val arrived : t -> int -> unit

  (** [granted t k] records that request [k] acquired the lock. *)
  val granted : t -> int -> unit

  (** Raises {!Violation} unless grants follow arrival order. *)
  val check : t -> unit
end

(** Raises unless every spawned thread finished. *)
val all_finished : Preempt_core.Runtime.t -> unit

(** Raises if the runtime recorded more sync blocks than wakeups
    (requires [metrics_enabled]). *)
val no_lost_wakeups : Preempt_core.Runtime.t -> unit

(** {1 Strategies} *)

type strategy =
  | Random_walk  (** independent uniform pick at every choice point *)
  | Pct of int
      (** PCT-style: default schedule with [d] randomly placed change
          points that force a non-default pick *)
  | Dfs  (** exhaustive depth-first enumeration (small programs only) *)
  | Dpor
      (** exhaustive with dynamic partial-order reduction
          (Flanagan–Godefroid backtrack sets + sleep sets): explores
          one representative schedule per Mazurkiewicz trace of the
          {e labeled} events.  Programs label their steps with engine
          footprints ([Engine.spawn ~footprint] /
          [Engine.set_footprint]); two events are dependent iff their
          footprints share a comma-separated atom.  Unlabeled events
          are assumed to commute with everything, so the reduction is
          sound relative to the program's labeling (the loom-style
          "declare your shared accesses" contract). *)
  | Replay of Trail.t  (** replay a recorded trail; beyond it, defaults *)

val strategy_name : strategy -> string

(** [schedule_seed seed i] is the chooser seed of schedule [i] in a run
    started from [seed]; [schedule_seed seed 0 = seed], so a failing
    schedule replays as [run ~seed:(schedule_seed seed i) ~budget:1]. *)
val schedule_seed : int -> int -> int

(** {1 Running} *)

type counterexample = {
  cx_message : string;  (** what went wrong *)
  cx_seed : int;  (** chooser seed of the failing schedule *)
  cx_strategy : string;  (** strategy that found it ({!strategy_name}) *)
  cx_budget : int;  (** budget of the run that found it *)
  cx_schedule : int;  (** 0-based index of the failing schedule *)
  cx_faults : bool;  (** fault injection was enabled *)
  cx_trail : Trail.t;  (** shrunk trail; replay with [Replay cx_trail] *)
  cx_trace : string;  (** Chrome-trace JSON of the shrunk failing run *)
  cx_flight : string;
      (** binary flight-record dump of the shrunk failing run — empty
          unless the program's runtime had its {!Preempt_core.Recorder}
          enabled; decode with {!Preempt_core.Recorder.decode} or
          [repro observe --load] *)
}

type report = {
  schedules : int;  (** schedules actually executed *)
  pruned : int;
      (** [Dpor] only: executions abandoned mid-schedule because their
          next step was in the sleep set (trace already covered) *)
  exhausted : bool;  (** DFS/DPOR only: the whole space was covered *)
  result : [ `Ok | `Violation of counterexample ];
}

(** Multi-line human-readable counterexample summary. *)
val describe : counterexample -> string

(** [run ~budget ~strategy prog] explores up to [budget] schedules.
    All schedules share one fixed engine seed; [seed] (default 1) only
    drives the chooser, so counterexamples are replayable from
    [(seed, strategy, budget)] alone.  [faults] (default false) enables
    fault injection.  [jobs] (default 1) fans [Random_walk] / [Pct]
    exploration across that many domains; the reported counterexample
    is the first-violating schedule index regardless of job count, and
    shrinking runs sequentially afterwards, so results are identical to
    [jobs:1] (other strategies ignore [jobs]).  [until] / [max_events]
    bound each schedule; [deadlock_after] (virtual seconds, default
    0.02) is how long every tracked thread must stay blocked before the
    watchdog reports a deadlock; [max_shrink_replays] bounds the
    shrinking phase. *)
val run :
  ?seed:int ->
  ?faults:bool ->
  ?jobs:int ->
  ?max_events:int ->
  ?until:float ->
  ?deadlock_after:float ->
  ?max_shrink_replays:int ->
  budget:int ->
  strategy:strategy ->
  (env -> program) ->
  report

(** Re-run a counterexample's shrunk trail (deterministic). *)
val replay : counterexample -> (env -> program) -> report

(** [shrink ~replay ~max_replays trail msg] greedily shrinks a failing
    trail toward the default schedule: phase 1 binary-searches the
    shortest failing prefix, phase 2 zeroes chunks of forced picks in
    halving sizes, stopping early once nothing is left to zero.
    [replay cand] must re-execute candidate [cand] and return the
    observed trail and message if it still fails.  Returns the best
    trail, its message, and the number of replays spent (exposed so
    tests can pin the shrinker's cost). *)
val shrink :
  replay:(Trail.t -> (Trail.t * string) option) ->
  max_replays:int ->
  Trail.t ->
  string ->
  Trail.t * string * int
