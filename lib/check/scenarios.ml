(** Ready-made programs for the checker — buggy and correct concurrency
    patterns over the preemptive runtime.  Used by the [repro check] CLI
    subcommand and the [@check-smoke] alias: each scenario carries the
    verdict the checker is expected to reach within its budget, so the
    registry doubles as an end-to-end regression suite for the checker
    itself (buggy programs must be caught, correct ones must pass). *)

open Oskern
open Preempt_core

type expect = Pass | Fail

type t = {
  sname : string;
  sdesc : string;
  expect : expect;
  sfaults : bool;  (** run with fault injection enabled *)
  sbudget : int;  (** schedules that suffice for the expected verdict *)
  prog : Runner.env -> Runner.program;
}

(* Two cores, two workers, aligned preemption timers, metrics on — the
   standard harness all scenarios run under.  Everything is rebuilt per
   schedule from the controller-carrying engine in [env]. *)
let preemptive_rt (env : Runner.env) =
  let machine = Machine.with_cores Machine.skylake 2 in
  let kernel = Kernel.create ~trace:env.Runner.trace env.Runner.eng machine in
  let config =
    Config.make ~timer_strategy:Config.Per_worker_aligned ~interval:0.3e-3
      ~metrics_enabled:true ~recorder_enabled:true ()
  in
  Runtime.create ~config kernel ~n_workers:2

(* Classic lock-order inversion: AB vs BA.  Both threads hold their
   first mutex across a compute, so nearly every schedule interleaves
   the acquisitions and the deadlock watchdog fires. *)
let deadlock_prog env =
  let rt = preemptive_rt env in
  let m1 = Usync.Mutex.create rt in
  let m2 = Usync.Mutex.create rt in
  let grab a b () =
    Usync.Mutex.lock a;
    Ult.compute 2e-4;
    Usync.Mutex.lock b;
    Ult.compute 1e-4;
    Usync.Mutex.unlock b;
    Usync.Mutex.unlock a
  in
  let ua =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"lock-ab"
      (grab m1 m2)
  in
  let ub =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"lock-ba"
      (grab m2 m1)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:[ ua; ub ] ~cores:2
    ~oracle:(fun () -> Runner.all_finished rt)
    ()

(* Check-then-sleep without atomicity: the waiter decides to sleep and
   only then parks itself, leaving a window in which the signaler's
   wake finds nobody.  In the default schedule the signaler arrives
   after the waiter has parked; injected worker stalls shift the window
   until the wake is lost and the waiter blocks forever. *)
let lost_wakeup_prog env =
  let rt = preemptive_rt env in
  let flag = ref false in
  let cell = ref None in
  let waiter =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"waiter"
      (fun () ->
        if not !flag then begin
          Ult.yield ();
          if not !flag then begin
            Ult.compute 5e-5 (* decided to sleep; not yet parked *);
            Ult.suspend (fun self -> cell := Some self)
          end
        end)
  in
  let signaler =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"signaler"
      (fun () ->
        Ult.compute 6e-5;
        flag := true;
        match !cell with
        | Some u ->
            cell := None;
            Runtime.ready rt u
        | None -> ())
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:[ waiter; signaler ] ~cores:2
    ~oracle:(fun () -> Runner.all_finished rt)
    ()

(* Broken test-and-set: the load-to-store window lets two threads see
   [busy = false] and both enter the critical section. *)
let racy_flag_prog env =
  let rt = preemptive_rt env in
  let excl = Runner.Excl.create "busy-flag section" in
  let busy = ref false in
  let body () =
    let rec acquire () =
      if !busy then begin
        Ult.yield ();
        acquire ()
      end
      else begin
        Ult.compute 1e-5 (* load-to-store window *);
        busy := true
      end
    in
    acquire ();
    Runner.Excl.critical excl (fun () -> Ult.compute 5e-5);
    busy := false
  in
  let us =
    List.init 2 (fun i ->
        Runtime.spawn rt ~kind:Types.Signal_yield ~home:i
          ~name:(Printf.sprintf "racer%d" i) body)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:us ~cores:2
    ~oracle:(fun () -> Runner.all_finished rt)
    ()

(* The correct version of the racy scenario: a real mutex guards the
   critical section, so no schedule may trip the monitor. *)
let mutex_ok_prog env =
  let rt = preemptive_rt env in
  let m = Usync.Mutex.create rt in
  let excl = Runner.Excl.create "mutex section" in
  let count = ref 0 in
  let threads = 3 in
  let rounds = 8 in
  let body () =
    for _ = 1 to rounds do
      Usync.Mutex.lock m;
      Runner.Excl.critical excl (fun () ->
          Ult.compute 2e-5;
          incr count);
      Usync.Mutex.unlock m;
      Ult.compute 1e-5
    done
  in
  let us =
    List.init threads (fun i ->
        Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
          ~name:(Printf.sprintf "locker%d" i) body)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:us ~cores:2
    ~oracle:(fun () ->
      Runner.all_finished rt;
      Runner.require (!count = threads * rounds)
        "mutex-ok: counter %d, expected %d" !count (threads * rounds);
      Runner.no_lost_wakeups rt)
    ()

(* Single-producer single-consumer channel: delivery must be complete
   and FIFO in every schedule, and no wakeup may be lost. *)
let channel_fifo_prog env =
  let rt = preemptive_rt env in
  let ch = Usync.Channel.create rt in
  let n = 40 in
  let got = ref [] in
  let producer =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"producer"
      (fun () ->
        for i = 1 to n do
          Usync.Channel.send ch i;
          if i mod 4 = 0 then Ult.compute 1e-5
        done)
  in
  let consumer =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"consumer"
      (fun () ->
        for _ = 1 to n do
          got := Usync.Channel.recv ch :: !got;
          Ult.compute 5e-6
        done)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:[ producer; consumer ] ~cores:2
    ~oracle:(fun () ->
      Runner.all_finished rt;
      Runner.require
        (List.rev !got = List.init n (fun i -> i + 1))
        "channel-fifo: messages reordered or dropped (%d received)"
        (List.length !got);
      Runner.no_lost_wakeups rt)
    ()

let all =
  [
    {
      sname = "deadlock";
      sdesc = "lock-order inversion (AB vs BA) caught by the watchdog";
      expect = Fail;
      sfaults = false;
      sbudget = 20;
      prog = deadlock_prog;
    };
    {
      sname = "lost-wakeup";
      sdesc = "check-then-sleep window loses a wakeup under worker stalls";
      expect = Fail;
      sfaults = true;
      sbudget = 300;
      prog = lost_wakeup_prog;
    };
    {
      sname = "racy-flag";
      sdesc = "broken test-and-set trips the mutual-exclusion monitor";
      expect = Fail;
      sfaults = false;
      sbudget = 20;
      prog = racy_flag_prog;
    };
    {
      sname = "mutex-ok";
      sdesc = "correct mutex: monitor and counters hold in every schedule";
      expect = Pass;
      sfaults = false;
      sbudget = 60;
      prog = mutex_ok_prog;
    };
    {
      sname = "channel-fifo";
      sdesc = "SPSC channel stays complete and FIFO in every schedule";
      expect = Pass;
      sfaults = false;
      sbudget = 60;
      prog = channel_fifo_prog;
    };
  ]

let find name = List.find_opt (fun s -> s.sname = name) all

let names () = List.map (fun s -> s.sname) all
