(** Ready-made programs for the checker — buggy and correct concurrency
    patterns over the preemptive runtime.  Used by the [repro check] CLI
    subcommand and the [@check-smoke] alias: each scenario carries the
    verdict the checker is expected to reach within its budget, so the
    registry doubles as an end-to-end regression suite for the checker
    itself (buggy programs must be caught, correct ones must pass). *)

open Desim
open Oskern
open Preempt_core

type expect = Pass | Fail

type t = {
  sname : string;
  sdesc : string;
  expect : expect;
  sfaults : bool;  (** run with fault injection enabled *)
  sbudget : int;  (** schedules that suffice for the expected verdict *)
  sstrategy : Runner.strategy option;
      (** strategy the scenario is built for; [None] = caller's choice *)
  sexhaust : bool;  (** the budget must fully exhaust the space (DPOR) *)
  stags : string list;  (** registry groups, e.g. ["lock"] *)
  prog : Runner.env -> Runner.program;
}

(* Two cores, two workers, aligned preemption timers, metrics on — the
   standard harness all scenarios run under.  Everything is rebuilt per
   schedule from the controller-carrying engine in [env]. *)
let preemptive_rt (env : Runner.env) =
  let machine = Machine.with_cores Machine.skylake 2 in
  let kernel = Kernel.create ~trace:env.Runner.trace env.Runner.eng machine in
  let config =
    Config.make ~timer_strategy:Config.Per_worker_aligned ~interval:0.3e-3
      ~metrics_enabled:true ~recorder_enabled:true ()
  in
  Runtime.create ~config kernel ~n_workers:2

(* Classic lock-order inversion: AB vs BA.  Both threads hold their
   first mutex across a compute, so nearly every schedule interleaves
   the acquisitions and the deadlock watchdog fires. *)
let deadlock_prog env =
  let rt = preemptive_rt env in
  let m1 = Usync.Mutex.create rt in
  let m2 = Usync.Mutex.create rt in
  let grab a b () =
    Usync.Mutex.lock a;
    Ult.compute 2e-4;
    Usync.Mutex.lock b;
    Ult.compute 1e-4;
    Usync.Mutex.unlock b;
    Usync.Mutex.unlock a
  in
  let ua =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"lock-ab"
      (grab m1 m2)
  in
  let ub =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"lock-ba"
      (grab m2 m1)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:[ ua; ub ] ~cores:2
    ~oracle:(fun () -> Runner.all_finished rt)
    ()

(* Check-then-sleep without atomicity: the waiter decides to sleep and
   only then parks itself, leaving a window in which the signaler's
   wake finds nobody.  In the default schedule the signaler arrives
   after the waiter has parked; injected worker stalls shift the window
   until the wake is lost and the waiter blocks forever. *)
let lost_wakeup_prog env =
  let rt = preemptive_rt env in
  let flag = ref false in
  let cell = ref None in
  let waiter =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"waiter"
      (fun () ->
        if not !flag then begin
          Ult.yield ();
          if not !flag then begin
            Ult.compute 5e-5 (* decided to sleep; not yet parked *);
            Ult.suspend (fun self -> cell := Some self)
          end
        end)
  in
  let signaler =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"signaler"
      (fun () ->
        Ult.compute 6e-5;
        flag := true;
        match !cell with
        | Some u ->
            cell := None;
            Runtime.ready rt u
        | None -> ())
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:[ waiter; signaler ] ~cores:2
    ~oracle:(fun () -> Runner.all_finished rt)
    ()

(* Broken test-and-set: the load-to-store window lets two threads see
   [busy = false] and both enter the critical section. *)
let racy_flag_prog env =
  let rt = preemptive_rt env in
  let excl = Runner.Excl.create "busy-flag section" in
  let busy = ref false in
  let body () =
    let rec acquire () =
      if !busy then begin
        Ult.yield ();
        acquire ()
      end
      else begin
        Ult.compute 1e-5 (* load-to-store window *);
        busy := true
      end
    in
    acquire ();
    Runner.Excl.critical excl (fun () -> Ult.compute 5e-5);
    busy := false
  in
  let us =
    List.init 2 (fun i ->
        Runtime.spawn rt ~kind:Types.Signal_yield ~home:i
          ~name:(Printf.sprintf "racer%d" i) body)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:us ~cores:2
    ~oracle:(fun () -> Runner.all_finished rt)
    ()

(* The correct version of the racy scenario: a real mutex guards the
   critical section, so no schedule may trip the monitor. *)
let mutex_ok_prog env =
  let rt = preemptive_rt env in
  let m = Usync.Mutex.create rt in
  let excl = Runner.Excl.create "mutex section" in
  let count = ref 0 in
  let threads = 3 in
  let rounds = 8 in
  let body () =
    for _ = 1 to rounds do
      Usync.Mutex.lock m;
      Runner.Excl.critical excl (fun () ->
          Ult.compute 2e-5;
          incr count);
      Usync.Mutex.unlock m;
      Ult.compute 1e-5
    done
  in
  let us =
    List.init threads (fun i ->
        Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
          ~name:(Printf.sprintf "locker%d" i) body)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:us ~cores:2
    ~oracle:(fun () ->
      Runner.all_finished rt;
      Runner.require (!count = threads * rounds)
        "mutex-ok: counter %d, expected %d" !count (threads * rounds);
      Runner.no_lost_wakeups rt)
    ()

(* Single-producer single-consumer channel: delivery must be complete
   and FIFO in every schedule, and no wakeup may be lost. *)
let channel_fifo_prog env =
  let rt = preemptive_rt env in
  let ch = Usync.Channel.create rt in
  let n = 40 in
  let got = ref [] in
  let producer =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"producer"
      (fun () ->
        for i = 1 to n do
          Usync.Channel.send ch i;
          if i mod 4 = 0 then Ult.compute 1e-5
        done)
  in
  let consumer =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:1 ~name:"consumer"
      (fun () ->
        for _ = 1 to n do
          got := Usync.Channel.recv ch :: !got;
          Ult.compute 5e-6
        done)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:[ producer; consumer ] ~cores:2
    ~oracle:(fun () ->
      Runner.all_finished rt;
      Runner.require
        (List.rev !got = List.init n (fun i -> i + 1))
        "channel-fifo: messages reordered or dropped (%d received)"
        (List.length !got);
      Runner.no_lost_wakeups rt)
    ()

(* ------------------------------------------------------------------ *)
(* Lock-algorithm suite (lib/core/ulock.ml): each algorithm runs under
   preemption + fault injection with the mutual-exclusion monitor, the
   liveness and lost-wakeup oracles, and — for the queue locks — the
   FIFO-fairness oracle over the lock's own arrival/grant history.  The
   broken variants are seeded regressions: the checker must catch each
   one's characteristic failure. *)

let lock_threads = 3

let lock_rounds = 3

let lock_prog ~section ~make env =
  let rt = preemptive_rt env in
  let lock, unlock, extra_oracle = make rt in
  let excl = Runner.Excl.create section in
  let body () =
    for _ = 1 to lock_rounds do
      lock ();
      Runner.Excl.critical excl (fun () -> Ult.compute 2e-5);
      unlock ();
      Ult.compute 1e-5
    done
  in
  let us =
    List.init lock_threads (fun i ->
        Runtime.spawn rt ~kind:Types.Klt_switching ~home:(i mod 2)
          ~name:(Printf.sprintf "locker%d" i) body)
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:us ~cores:2
    ~oracle:(fun () ->
      Runner.all_finished rt;
      Runner.require
        (Runner.Excl.entries excl = lock_threads * lock_rounds)
        "%s: %d critical entries, expected %d" section
        (Runner.Excl.entries excl)
        (lock_threads * lock_rounds);
      extra_oracle ();
      Runner.no_lost_wakeups rt)
    ()

let fifo_oracle name history () =
  let fifo = Runner.Fifo.create name in
  let arrivals, grants = history () in
  List.iter (Runner.Fifo.arrived fifo) arrivals;
  List.iter (Runner.Fifo.granted fifo) grants;
  Runner.Fifo.check fifo

let ticket_prog ?unfair env =
  lock_prog ~section:"ticket section"
    ~make:(fun rt ->
      let lk = Ulock.Ticket.create ?unfair rt in
      ( (fun () -> Ulock.Ticket.lock lk),
        (fun () -> Ulock.Ticket.unlock lk),
        fifo_oracle "ticket lock" (fun () -> Ulock.Ticket.history lk) ))
    env

let ttas_prog ?racy env =
  lock_prog ~section:"ttas section"
    ~make:(fun rt ->
      let lk = Ulock.Ttas.create ?racy rt in
      ( (fun () -> Ulock.Ttas.lock lk),
        (fun () -> Ulock.Ttas.unlock lk),
        fun () -> () ))
    env

let mcs_prog ?drop_handoff env =
  lock_prog ~section:"mcs section"
    ~make:(fun rt ->
      let lk = Ulock.Mcs.create ?drop_handoff rt in
      ( (fun () -> Ulock.Mcs.lock lk),
        (fun () -> Ulock.Mcs.unlock lk),
        fifo_oracle "mcs lock" (fun () -> Ulock.Mcs.history lk) ))
    env

(* ------------------------------------------------------------------ *)
(* DPOR showcase: four writer processes, three labeled steps each, all
   at the same timestamp — 12!/(3!)^4 = 369,600 plain interleavings.
   Only the final steps of writers 0 and 1 touch shared state, so there
   are exactly two Mazurkiewicz traces; DPOR exhausts the space in a
   handful of schedules where plain DFS would need all 369,600. *)

let dpor_writers_prog env =
  let eng = env.Runner.eng in
  let writers = 4 in
  let privates = Array.make writers 0 in
  let shared = ref 0 in
  for p = 0 to writers - 1 do
    Engine.spawn eng
      ~footprint:(Printf.sprintf "w%d" p)
      (Printf.sprintf "writer%d" p)
      (fun () ->
        privates.(p) <- privates.(p) + 1;
        Engine.delay 0.0;
        privates.(p) <- privates.(p) + 1;
        if p < 2 then Engine.set_footprint "shared";
        Engine.delay 0.0;
        if p < 2 then shared := !shared + 1 else privates.(p) <- privates.(p) + 1)
  done;
  Runner.program
    ~oracle:(fun () ->
      Runner.require (!shared = 2) "dpor-writers: shared counter %d, expected 2"
        !shared;
      Array.iteri
        (fun p v ->
          let want = if p < 2 then 2 else 3 in
          Runner.require (v = want) "dpor-writers: writer %d count %d, expected %d"
            p v want)
        privates)
    ()

(* ------------------------------------------------------------------ *)
(* Sharded-pool overflow: engine-level counterpart of the real fiber
   runtime's cross-sub-pool overflow steal (lib/fiber/sched.ml).  One
   pinned "compute" worker drains its own queue under injected
   preemption ("pool.preempt") and worker stalls ("pool.stall"); two
   "analysis" workers each drain a private backlog first and
   overflow-steal from compute only once their own sub-pool is idle
   (steal-or-defer is a "pool.victim" choice point).  The oracle
   asserts every compute task runs exactly once — no lost and no
   duplicated fiber — and that no overflow steal happened while the
   thief's own sub-pool still had runnable work.

   [unfenced] re-introduces the bugs the one-step (fenced) commit
   prevents: the thief picks its victim task, then crosses a schedule
   point before marking it claimed, so two thieves (or a thief and the
   owner) can both run the same task — and analysis work refilled into
   the thief's own backlog across that window ("pool.refill") turns
   the completed steal into an overflow steal while the own sub-pool
   had runnable work, tripping the second oracle. *)

let pool_overflow_prog ?(unfenced = false) env =
  let eng = env.Runner.eng in
  let n_tasks = 4 in
  let exec = Array.make n_tasks 0 in
  let claimed = Array.make n_tasks false in
  let own = Array.make 2 2 in (* private analysis backlog per thief *)
  let bad_steal = ref false in
  let fault tag =
    match Engine.controller eng with
    | Some c -> Choice.fault c ~tag
    | None -> false
  in
  let pick ~n tag =
    match Engine.controller eng with
    | Some c -> Choice.pick c ~n ~tag
    | None -> 0
  in
  Engine.spawn eng ~footprint:"pool.q" "compute0" (fun () ->
      for i = 0 to n_tasks - 1 do
        if fault "pool.stall" then Engine.delay 2e-4;
        if not claimed.(i) then begin
          (* Owner's claim is one engine step: atomic by construction. *)
          claimed.(i) <- true;
          exec.(i) <- exec.(i) + 1
        end;
        (* New analysis work may land in a thief's backlog at any
           point — in particular inside an unfenced thief's
           pick-to-commit window, which is what keeps the bad-steal
           oracle honest.  A pick, not a fault: the unfenced variant
           runs without fault injection and still needs refills. *)
        if pick ~n:2 "pool.refill" = 1 then own.(i mod 2) <- own.(i mod 2) + 1;
        if fault "pool.preempt" then Engine.delay 0.0;
        Engine.delay 1e-4
      done);
  let oldest_unclaimed () =
    let r = ref (-1) in
    for i = n_tasks - 1 downto 0 do
      if not claimed.(i) then r := i
    done;
    !r
  in
  for w = 0 to 1 do
    Engine.spawn eng ~footprint:"pool.q"
      (Printf.sprintf "analysis%d" w)
      (fun () ->
        for _poll = 1 to 12 do
          if own.(w) > 0 then
            (* Own sub-pool busy: serve it; overflow is not allowed. *)
            own.(w) <- own.(w) - 1
          else begin
            match oldest_unclaimed () with
            | -1 -> ()
            | _ when pick ~n:2 "pool.victim" = 1 -> () (* defer the steal *)
            | i ->
                if unfenced then Engine.delay 0.0;
                (* ^ buggy variant: victim chosen, claim not yet marked *)
                (* Re-read at the commit point.  The fenced thief's
                   emptiness test, victim pick and claim are one engine
                   step, so own.(w) is still 0 here by construction; the
                   unfenced thief crossed a schedule point above, where
                   a pool.refill can land analysis work in its backlog —
                   stealing anyway is exactly the forbidden overflow
                   steal while the own sub-pool has runnable work. *)
                if own.(w) > 0 then bad_steal := true;
                claimed.(i) <- true;
                exec.(i) <- exec.(i) + 1
          end;
          Engine.delay 1e-4
        done)
  done;
  Runner.program
    ~oracle:(fun () ->
      Array.iteri
        (fun i n ->
          Runner.require (n = 1)
            "pool-overflow: task %d executed %d time(s), expected exactly 1"
            i n)
        exec;
      Runner.require (not !bad_steal)
        "pool-overflow: overflow steal while own sub-pool had runnable work")
    ()

(* Batched steal-half: engine-level counterpart of the real deque's
   [steal_batch] (lib/fiber/deque.ml).  A bounded ring with
   free-running [top]/[bottom]: the owner pushes while its room check
   [bottom - top < cap] says the ring has space, pops from the bottom
   otherwise, and a thief raids up to half the run per trip.  The
   sound design iterates per-element claims — each element's
   emptiness check, copy-out and [top] publish are one engine step,
   the batched analogue of the classic single-element CAS — so the
   oracle's exactly-once property holds in every schedule.

   [published] seeds the one-shot range-claim bug the real
   implementation documents and rejects: the thief publishes the
   whole claim ([top += k]) first and copies the elements out across
   schedule points.  The owner's room check then believes the
   claimed-but-uncopied slots are free, wraps, and overwrites one —
   the thief copies the new task (double execution) and the
   overwritten task never runs (lost fiber).  Either way a task's
   execution count leaves 1 and the checker must catch and shrink
   it. *)
let steal_batch_prog ?(published = false) env =
  let eng = env.Runner.eng in
  let cap = 4 in
  let n_tasks = 8 in
  let slots = Array.make cap (-1) in
  let top = ref 0 in
  let bottom = ref 0 in
  let exec = Array.make n_tasks 0 in
  let run_task i = if i >= 0 && i < n_tasks then exec.(i) <- exec.(i) + 1 in
  let fault tag =
    match Engine.controller eng with
    | Some c -> Choice.fault c ~tag
    | None -> false
  in
  Engine.spawn eng ~footprint:"deque" "owner" (fun () ->
      let next = ref 0 in
      while !next < n_tasks do
        if !bottom - !top < cap then begin
          (* Room per the free-running indices: push is one step. *)
          slots.(!bottom mod cap) <- !next;
          bottom := !bottom + 1;
          incr next
        end
        else if !bottom > !top then begin
          (* Ring full: pop the newest instead (one step). *)
          bottom := !bottom - 1;
          run_task slots.(!bottom mod cap)
        end;
        if fault "deque.stall" then Engine.delay 2e-4;
        Engine.delay 1e-4
      done;
      while !bottom > !top do
        bottom := !bottom - 1;
        run_task slots.(!bottom mod cap)
      done);
  Engine.spawn eng ~footprint:"deque" "thief" (fun () ->
      for _raid = 1 to 10 do
        let run = !bottom - !top in
        if run > 0 then begin
          let k = min 2 ((run + 1) / 2) in
          if published then begin
            let t0 = !top in
            top := t0 + k (* whole range claimed before any copy-out *);
            for j = 0 to k - 1 do
              Engine.delay 1e-4 (* publish-to-copy window *);
              run_task slots.((t0 + j) mod cap)
            done
          end
          else
            (* Iterated claims: check + copy + publish per element in
               one engine step; stop when the run dries up. *)
            let rec claim j =
              if j < k && !bottom - !top > 0 then begin
                let i = slots.(!top mod cap) in
                top := !top + 1;
                run_task i;
                Engine.delay 1e-4;
                claim (j + 1)
              end
            in
            claim 0
        end;
        Engine.delay 1e-4
      done);
  Runner.program
    ~oracle:(fun () ->
      Array.iteri
        (fun i n ->
          Runner.require (n = 1)
            "steal-batch: task %d executed %d time(s), expected exactly 1" i n)
        exec)
    ()

(* Serving-injector model: the engine-level counterpart of the
   lib/serve open-loop load generator.  An injector ULT publishes
   requests at fixed offsets — never waiting for completions, the
   open-loop property — and two server ULTs on separate workers claim
   them under a Usync mutex, run a short/long service mix long enough
   for the 0.3 ms preemption timer to strike mid-service, and fulfill
   the request's response Ivar.  Once everything is published the
   injector awaits every response, so the checker's schedules (plus
   injected timer/stall faults) probe the two properties the real
   generator relies on: every request executes exactly once, and no
   response wake is lost (a lost wake parks the injector forever and
   [all_finished] trips).

   [racy] splits the claim: the server picks its request, then crosses
   a schedule point before marking it claimed, so two servers can
   dispatch the same request — the double-execution the oracle must
   catch. *)
let serve_overload_prog ?(racy = false) env =
  let rt = preemptive_rt env in
  let n_req = 5 in
  let exec = Array.make n_req 0 in
  let claimed = Array.make n_req false in
  let published = ref 0 in
  let m = Usync.Mutex.create rt in
  let resp = Array.init n_req (fun _ -> Usync.Ivar.create rt) in
  let injector =
    Runtime.spawn rt ~kind:Types.Klt_switching ~home:0 ~name:"injector"
      (fun () ->
        for i = 0 to n_req - 1 do
          published := i + 1;
          Ult.compute 1e-4 (* inter-arrival gap; no await — open loop *)
        done;
        Array.iter Usync.Ivar.read resp)
  in
  let next_unclaimed () =
    let r = ref (-1) in
    for i = !published - 1 downto 0 do
      if not claimed.(i) then r := i
    done;
    !r
  in
  let servers =
    List.init 2 (fun w ->
        Runtime.spawn rt ~kind:Types.Klt_switching ~home:w
          ~name:(Printf.sprintf "server%d" w)
          (fun () ->
            let polls = ref 0 in
            let all_claimed () =
              !published = n_req && Array.for_all Fun.id claimed
            in
            while (not (all_claimed ())) && !polls < 200 do
              incr polls;
              let i =
                if racy then begin
                  (* Buggy variant: request picked, claim not yet
                     marked — the schedule point in between lets the
                     other server pick the same request. *)
                  let i = next_unclaimed () in
                  if i >= 0 then begin
                    Ult.compute 1e-4 (* pick-to-claim window *);
                    claimed.(i) <- true
                  end;
                  i
                end
                else begin
                  Usync.Mutex.lock m;
                  let i = next_unclaimed () in
                  if i >= 0 then claimed.(i) <- true;
                  Usync.Mutex.unlock m;
                  i
                end
              in
              if i < 0 then
                (* A zero-time yield would burn the poll budget before
                   the injector publishes anything; pace the idle poll
                   so the servers span the whole injection horizon.
                   Every duration in this program is a multiple of the
                   1e-4 arrival gap on purpose: schedule-relevant
                   events land on shared timestamps, so the chooser's
                   tie-breaking — not wall-clock luck — decides who
                   wins a pick-to-claim race. *)
                Ult.compute 1e-4
              else begin
                (* Long services overlap several 0.3 ms timer fires, so
                   servers get preempted mid-request. *)
                Ult.compute (if i mod 4 = 3 then 8e-4 else 1e-4);
                exec.(i) <- exec.(i) + 1;
                if Usync.Ivar.peek resp.(i) = None then
                  Usync.Ivar.fill resp.(i) ()
              end
            done))
  in
  Runtime.start rt;
  Runner.program ~runtime:rt ~ults:(injector :: servers) ~cores:2
    ~oracle:(fun () ->
      Array.iteri
        (fun i n ->
          Runner.require (n = 1)
            "serve-overload: request %d executed %d time(s), expected \
             exactly 1"
            i n)
        exec;
      Runner.all_finished rt)
    ()

(* ------------------------------------------------------------------ *)
(* Telemetry ring model: the checker-level counterpart of the live
   telemetry sampler (lib/core/telemetry.ml + the ticker hook in
   lib/fiber/sched.ml).  A sampler ULT feeds one worker's ring a
   deterministic sequence — including hostile inputs (negative depth,
   util outside [0,1]) the sampler is specified to clamp — past the
   ring's capacity, while a reader ULT polls [series] across schedule
   points, modelling the display thread.  The oracle asserts the
   wraparound contract: every mid-run read sees monotone [p_seq] and
   clamped fields, the final series is exactly the last [capacity]
   samples, and replaying the same input into a fresh instance
   reproduces the retained series bit-for-bit (sampler determinism —
   the seeded regression the telemetry display relies on). *)
let telemetry_ring_prog env =
  let eng = env.Runner.eng in
  let cap = 4 in
  let n_samples = 7 in
  let make () =
    let t = Telemetry.create ~n_workers:1 ~capacity:cap ~channels:1 in
    Telemetry.set_enabled t true;
    t
  in
  let feed t i =
    (* Hostile on purpose: depth below zero and util outside [0,1]
       model the racy plain-counter reads the real sampler performs. *)
    let depth = if i mod 3 = 2 then -1 else i in
    let util = if i mod 2 = 0 then 1.5 else -0.25 in
    Telemetry.sample t ~worker:0
      ~ts:(float_of_int i *. 1e-3)
      ~depth ~steals_in:i ~steals_out:(i / 2) ~parks:i ~wakes:i
      ~quantum:1e-3 ~util;
    Telemetry.observe t ~worker:0 ~channel:0 (float_of_int (i + 1) *. 1e-4);
    if (i + 1) mod 3 = 0 then Telemetry.rotate_windows t
  in
  let tel = make () in
  let reader_ok = ref true in
  Engine.spawn eng ~footprint:"tel.ring" "sampler" (fun () ->
      for i = 0 to n_samples - 1 do
        feed tel i;
        Engine.delay 1e-4
      done);
  Engine.spawn eng ~footprint:"tel.ring" "reader" (fun () ->
      for _poll = 1 to 5 do
        let s = Telemetry.series tel ~worker:0 in
        Array.iteri
          (fun k (p : Telemetry.point) ->
            if k > 0 && p.Telemetry.p_seq <> s.(k - 1).Telemetry.p_seq + 1
            then reader_ok := false;
            if
              p.Telemetry.p_depth < 0
              || p.Telemetry.p_util < 0.0
              || p.Telemetry.p_util > 1.0
            then reader_ok := false)
          s;
        Engine.delay 1e-4
      done);
  Runner.program
    ~oracle:(fun () ->
      Runner.require !reader_ok
        "telemetry-ring: a mid-run read saw non-monotone p_seq or an \
         unclamped field";
      Runner.require
        (Telemetry.total_samples tel = n_samples)
        "telemetry-ring: %d sample(s) recorded, expected %d"
        (Telemetry.total_samples tel) n_samples;
      let s = Telemetry.series tel ~worker:0 in
      Runner.require
        (Array.length s = cap)
        "telemetry-ring: wrapped series retained %d point(s), expected %d"
        (Array.length s) cap;
      Runner.require
        (s.(0).Telemetry.p_seq = n_samples - cap)
        "telemetry-ring: series starts at seq %d, expected %d (last \
         capacity samples)"
        s.(0).Telemetry.p_seq (n_samples - cap);
      let replay = make () in
      for i = 0 to n_samples - 1 do
        feed replay i
      done;
      Runner.require
        (Telemetry.series replay ~worker:0 = s)
        "telemetry-ring: replaying the same input produced a different \
         series (sampler must be deterministic)";
      Runner.require
        (Metrics.Hist.count (Telemetry.channel_sketch tel ~channel:0)
        = Metrics.Hist.count (Telemetry.channel_sketch replay ~channel:0))
        "telemetry-ring: window sketch diverged from the deterministic \
         replay")
    ()

(* The negative-transient bug the clamps exist for: the sampler reads
   two racy cumulative counters non-atomically (spawned, then — across
   a schedule point — completed) and publishes the difference as a
   queue depth.  A schedule that lets the worker retire work between
   the two loads drives the difference negative; publishing it raw is
   the bug ([Fiber.stats] and [Telemetry.sample] clamp instead). *)
let telemetry_racy_prog env =
  let eng = env.Runner.eng in
  let spawned = ref 0 in
  let completed = ref 0 in
  let min_pending = ref 0 in
  Engine.spawn eng ~footprint:"tel.counters" "worker" (fun () ->
      for _task = 1 to 4 do
        incr spawned;
        Engine.delay 1e-4;
        incr completed;
        Engine.delay 1e-4
      done);
  Engine.spawn eng ~footprint:"tel.counters" "sampler" (fun () ->
      for _sweep = 1 to 4 do
        let s = !spawned in
        Engine.delay 1e-4 (* torn read: the window the clamp closes *);
        let pending = s - !completed in
        if pending < !min_pending then min_pending := pending;
        Engine.delay 1e-4
      done);
  Runner.program
    ~oracle:(fun () ->
      Runner.require (!min_pending >= 0)
        "telemetry-racy: sampler published pending = %d (negative \
         transient must be clamped)"
        !min_pending)
    ()

let all =
  [
    {
      sname = "deadlock";
      sdesc = "lock-order inversion (AB vs BA) caught by the watchdog";
      expect = Fail;
      sfaults = false;
      sbudget = 20;
      sstrategy = None;
      sexhaust = false;
      stags = [];
      prog = deadlock_prog;
    };
    {
      sname = "lost-wakeup";
      sdesc = "check-then-sleep window loses a wakeup under worker stalls";
      expect = Fail;
      sfaults = true;
      sbudget = 300;
      sstrategy = None;
      sexhaust = false;
      stags = [];
      prog = lost_wakeup_prog;
    };
    {
      sname = "racy-flag";
      sdesc = "broken test-and-set trips the mutual-exclusion monitor";
      expect = Fail;
      sfaults = false;
      sbudget = 20;
      sstrategy = None;
      sexhaust = false;
      stags = [];
      prog = racy_flag_prog;
    };
    {
      sname = "mutex-ok";
      sdesc = "correct mutex: monitor and counters hold in every schedule";
      expect = Pass;
      sfaults = false;
      sbudget = 60;
      sstrategy = None;
      sexhaust = false;
      stags = [];
      prog = mutex_ok_prog;
    };
    {
      sname = "channel-fifo";
      sdesc = "SPSC channel stays complete and FIFO in every schedule";
      expect = Pass;
      sfaults = false;
      sbudget = 60;
      sstrategy = None;
      sexhaust = false;
      stags = [];
      prog = channel_fifo_prog;
    };
    {
      sname = "ticket-lock";
      sdesc = "ticket lock: exclusion + FIFO fairness under preemption/faults";
      expect = Pass;
      sfaults = true;
      sbudget = 40;
      sstrategy = None;
      sexhaust = false;
      stags = [ "lock" ];
      prog = ticket_prog ?unfair:None;
    };
    {
      sname = "ticket-unfair";
      sdesc = "broken ticket lock: LIFO barging wakeups break FIFO fairness";
      expect = Fail;
      sfaults = false;
      sbudget = 120;
      sstrategy = None;
      sexhaust = false;
      stags = [ "lock" ];
      prog = ticket_prog ~unfair:true;
    };
    {
      sname = "ttas-lock";
      sdesc = "TTAS+backoff lock: exclusion under preemption/faults";
      expect = Pass;
      sfaults = true;
      sbudget = 40;
      sstrategy = None;
      sexhaust = false;
      stags = [ "lock" ];
      prog = ttas_prog ?racy:None;
    };
    {
      sname = "ttas-racy";
      sdesc = "broken TTAS: preemptible test-to-set window breaks exclusion";
      expect = Fail;
      sfaults = false;
      sbudget = 40;
      sstrategy = None;
      sexhaust = false;
      stags = [ "lock" ];
      prog = ttas_prog ~racy:true;
    };
    {
      sname = "mcs-lock";
      sdesc = "MCS queue lock: exclusion + FIFO fairness under preemption/faults";
      expect = Pass;
      sfaults = true;
      sbudget = 40;
      sstrategy = None;
      sexhaust = false;
      stags = [ "lock" ];
      prog = mcs_prog ?drop_handoff:None;
    };
    {
      sname = "mcs-drop";
      sdesc = "broken MCS: release drops a mid-enqueue successor (deadlock)";
      expect = Fail;
      sfaults = false;
      sbudget = 200;
      sstrategy = None;
      sexhaust = false;
      stags = [ "lock" ];
      prog = mcs_prog ~drop_handoff:true;
    };
    {
      sname = "pool-overflow";
      sdesc = "sub-pool overflow: atomic claim keeps every fiber exactly-once";
      expect = Pass;
      sfaults = true;
      sbudget = 80;
      sstrategy = None;
      sexhaust = false;
      stags = [ "pool" ];
      prog = pool_overflow_prog ?unfenced:None;
    };
    {
      sname = "pool-overflow-unfenced";
      sdesc = "split overflow claim double-runs a fiber taken by two thieves";
      expect = Fail;
      sfaults = false;
      sbudget = 40;
      sstrategy = None;
      sexhaust = false;
      stags = [ "pool" ];
      prog = pool_overflow_prog ~unfenced:true;
    };
    {
      sname = "steal-batch";
      sdesc =
        "batched steal-half: iterated per-element claims keep every task \
         exactly-once";
      expect = Pass;
      sfaults = true;
      sbudget = 80;
      sstrategy = None;
      sexhaust = false;
      stags = [ "steal" ];
      prog = steal_batch_prog ?published:None;
    };
    {
      sname = "steal-batch-published";
      sdesc =
        "range claim published before copy-out lets the owner overwrite a \
         claimed slot";
      expect = Fail;
      sfaults = false;
      sbudget = 80;
      sstrategy = None;
      sexhaust = false;
      stags = [ "steal" ];
      prog = steal_batch_prog ~published:true;
    };
    {
      sname = "serve-overload";
      sdesc =
        "open-loop injector: mutexed claim keeps requests exactly-once, no \
         response wake lost";
      expect = Pass;
      sfaults = true;
      sbudget = 60;
      sstrategy = None;
      sexhaust = false;
      stags = [ "serve" ];
      prog = serve_overload_prog ?racy:None;
    };
    {
      sname = "serve-overload-racy";
      sdesc = "split pick-to-claim window double-dispatches a request";
      expect = Fail;
      sfaults = false;
      sbudget = 120;
      sstrategy = None;
      sexhaust = false;
      stags = [ "serve" ];
      prog = serve_overload_prog ~racy:true;
    };
    {
      sname = "telemetry-ring";
      sdesc =
        "telemetry ring keeps the last capacity samples, clamped and \
         deterministic, under concurrent reads";
      expect = Pass;
      sfaults = false;
      sbudget = 60;
      sstrategy = None;
      sexhaust = false;
      stags = [ "telemetry" ];
      prog = telemetry_ring_prog;
    };
    {
      sname = "telemetry-racy";
      sdesc =
        "unclamped two-load sampler publishes a negative queue depth";
      expect = Fail;
      sfaults = false;
      sbudget = 120;
      sstrategy = None;
      sexhaust = false;
      stags = [ "telemetry" ];
      prog = telemetry_racy_prog;
    };
    {
      sname = "dpor-writers";
      sdesc = "369,600-interleaving writer program exhausted by DPOR";
      expect = Pass;
      sfaults = false;
      sbudget = 64;
      sstrategy = Some Runner.Dpor;
      sexhaust = true;
      stags = [ "dpor" ];
      prog = dpor_writers_prog;
    };
  ]

let find name = List.find_opt (fun s -> s.sname = name) all

let find_tag tag = List.filter (fun s -> List.mem tag s.stags) all

let names () = List.sort compare (List.map (fun s -> s.sname) all)
