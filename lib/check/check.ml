(** Schedule exploration and fault injection for the preemptive
    runtime — the public face of the [check] library.

    [Check.run ~budget ~strategy prog] explores controller-driven
    schedules of [prog] and reports the first invariant violation as a
    shrunk, deterministically replayable {!Trail.t}.  See
    [docs/checking.md] for the full story. *)

include Runner
module Trail = Trail
module Scenarios = Scenarios
