(** Schedule exploration and fault injection over the deterministic
    simulator (in the spirit of loom / shuttle / PCT).

    Every nondeterministic decision in the stack — engine tie-breaks at
    equal timestamps, preemption-timer firing offsets, KLT-pool picks,
    work-steal victim choice, plus injected faults — is routed through a
    {!Desim.Choice.t} controller.  [run] executes the program under
    [budget] controller-driven schedules, records each consultation into
    a {!Trail.t}, and reports the first invariant violation together
    with a greedily shrunk, deterministically replayable trail. *)

open Desim
open Preempt_core

exception Violation of string

let violate fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt

let require ok fmt =
  Printf.ksprintf (fun m -> if not ok then raise (Violation m)) fmt

(* ------------------------------------------------------------------ *)
(* Programs under test                                                 *)
(* ------------------------------------------------------------------ *)

type env = { eng : Engine.t; trace : Trace.t }

type program = {
  runtime : Runtime.t option;  (** watched by the deadlock oracle *)
  ults : Ult.t list;  (** threads the deadlock oracle tracks *)
  cores : int;  (** for the violation-report trace dump; 0 = no dump *)
  oracle : unit -> unit;  (** post-run invariant check; raise {!Violation} *)
}

let program ?runtime ?(ults = []) ?(cores = 0) ?(oracle = fun () -> ()) () =
  { runtime; ults; cores; oracle }

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

(** Mutual-exclusion monitor: raises as soon as two threads are inside
    the same critical section. *)
module Excl = struct
  type t = { ename : string; mutable inside : int; mutable entries : int }

  let create ename = { ename; inside = 0; entries = 0 }

  let enter t =
    t.inside <- t.inside + 1;
    t.entries <- t.entries + 1;
    if t.inside > 1 then
      violate "mutual exclusion violated: %d threads inside %s" t.inside
        t.ename

  let leave t = t.inside <- t.inside - 1

  let critical t f =
    enter t;
    Fun.protect ~finally:(fun () -> leave t) f

  let entries t = t.entries
end

(** FIFO-fairness monitor for queue locks: grants must follow arrival
    order.  The lock under test reports both orders; [check] raises on
    the first position where they diverge. *)
module Fifo = struct
  type t = { fname : string; mutable arrivals : int list; mutable grants : int list }

  let create fname = { fname; arrivals = []; grants = [] }

  let arrived t k = t.arrivals <- k :: t.arrivals

  let granted t k = t.grants <- k :: t.grants

  let order = List.rev

  let check t =
    let a = order t.arrivals and g = order t.grants in
    let show l = String.concat "," (List.map string_of_int l) in
    require (a = g) "%s: FIFO fairness violated (arrival order [%s], grant order [%s])"
      t.fname (show a) (show g)
end

let all_finished rt =
  let n = Runtime.unfinished rt in
  require (n = 0) "liveness: %d thread(s) never finished" n

let no_lost_wakeups rt =
  if Runtime.metrics_enabled rt then begin
    let s = Runtime.metrics rt in
    require
      (s.Metrics.s_sync_blocks = s.Metrics.s_sync_wakeups)
      "lost wakeup: %d sync blocks but only %d wakeups"
      s.Metrics.s_sync_blocks s.Metrics.s_sync_wakeups
  end

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

type strategy =
  | Random_walk  (** independent uniform pick at every choice point *)
  | Pct of int
      (** PCT-style: default schedule with [d] randomly placed change
          points that force a non-default pick (Burckhardt et al.) *)
  | Dfs  (** exhaustive depth-first enumeration (small programs only) *)
  | Dpor
      (** exhaustive with dynamic partial-order reduction: one
          representative per Mazurkiewicz trace of the labeled events
          (Flanagan–Godefroid backtrack sets + sleep sets) *)
  | Replay of Trail.t  (** replay a recorded trail; beyond it, defaults *)

let strategy_name = function
  | Random_walk -> "random"
  | Pct d -> Printf.sprintf "pct:%d" d
  | Dfs -> "dfs"
  | Dpor -> "dpor"
  | Replay _ -> "replay"

(* All schedules of one [run] share the engine seed; only the chooser
   seed varies, so a counterexample replays from (seed, strategy,
   budget=1) alone.  The mix keeps per-schedule streams decorrelated
   while [schedule_seed seed 0 = seed]. *)
let schedule_seed seed i = seed + (i * 0x9E3779B1)

let default_engine_seed = 42

type kind = K_choose | K_fault | K_delay

(* A decider answers one consultation; the recorder around it writes
   the trail.  Fault and delay consultations reach the decider only
   when fault injection is enabled, so trails stay consistent across
   record / replay regardless of trail contents. *)

let clamp e n = if e.Trail.picked < n then e.Trail.picked else 0

let follower (entries : Trail.t) =
  let pos = ref 0 in
  fun _kind ~n ~tag:_ ~alts:_ ->
    if !pos < Array.length entries then begin
      let e = entries.(!pos) in
      incr pos;
      clamp e n
    end
    else 0

let random_decider seed =
  let r = Rng.make seed in
  fun kind ~n ~tag:_ ~alts:_ ->
    match kind with
    | K_choose -> Rng.int r n
    | K_fault -> if Rng.int r 8 = 0 then 1 else 0
    | K_delay -> if Rng.int r 8 = 0 then 1 + Rng.int r 3 else 0

let pct_decider ~depth ~horizon seed =
  let r = Rng.make seed in
  let flips = Hashtbl.create (max 1 depth) in
  for _ = 1 to depth do
    Hashtbl.replace flips (Rng.int r (max 1 horizon)) ()
  done;
  let count = ref 0 in
  fun kind ~n ~tag:_ ~alts:_ ->
    match kind with
    | K_choose ->
        let i = !count in
        incr count;
        if Hashtbl.mem flips i then Rng.int r n else 0
    | K_fault -> if Rng.int r 8 = 0 then 1 else 0
    | K_delay -> if Rng.int r 8 = 0 then 1 + Rng.int r 3 else 0

(* DFS walks the choice tree leaves-first: run the current prefix with
   defaults past its end, then bump the deepest decision that still has
   an untried alternative.  Every leaf (complete schedule) is visited
   exactly once. *)
type dfs_state = { mutable prefix : Trail.t; mutable exhausted : bool }

let dfs_decider st =
  let pos = ref 0 in
  fun _kind ~n ~tag:_ ~alts:_ ->
    if !pos < Array.length st.prefix then begin
      let e = st.prefix.(!pos) in
      incr pos;
      clamp e n
    end
    else 0

let dfs_advance st (observed : Trail.t) =
  let rec find i =
    if i < 0 then None
    else if observed.(i).Trail.picked < observed.(i).Trail.n - 1 then Some i
    else find (i - 1)
  in
  match find (Array.length observed - 1) with
  | None -> st.exhausted <- true
  | Some i ->
      let p = Array.sub observed 0 (i + 1) in
      p.(i) <- { (p.(i)) with Trail.picked = p.(i).Trail.picked + 1 };
      st.prefix <- p

(* ------------------------------------------------------------------ *)
(* Single-schedule execution                                           *)
(* ------------------------------------------------------------------ *)

(* Raised by the DPOR decider to abandon a schedule whose next step is
   in the sleep set: its Mazurkiewicz trace was already covered. *)
exception Pruned

type one = {
  o_trail : Trail.t;
  o_failure : string option;
  o_pruned : bool;  (** DPOR abandoned the schedule as redundant *)
  o_trace : Trace.t;
  o_cores : int;
  o_flight : string;
  o_parent : int -> int;  (** event creation parent (engine metadata) *)
}

let message_of = function
  | Violation m -> m
  | Engine.Deadlock m -> "deadlock: " ^ m
  | Invalid_argument m -> "invalid-arg: " ^ m
  | Failure m -> "failure: " ^ m
  | e -> "exception: " ^ Printexc.to_string e

(* Deadlock / lost-wakeup watchdog: a recurring engine event that fires
   while the runtime is live.  If every unfinished tracked thread stays
   U_blocked for [deadlock_after] of continuous virtual time, nothing
   can ever wake them (all wakers are themselves blocked or gone) and
   the schedule is reported as a deadlock. *)
let watchdog eng rt ults ~deadlock_after =
  let interval = deadlock_after /. 8.0 in
  let blocked_since = ref Float.nan in
  let rec tick () =
    if not (Runtime.is_stopping rt) then begin
      let live = List.filter (fun u -> not (Ult.finished u)) ults in
      if live <> [] && List.for_all Ult.blocked live then begin
        if Float.is_nan !blocked_since then blocked_since := Engine.now eng
        else if Engine.now eng -. !blocked_since >= deadlock_after then begin
          let names = String.concat ", " (List.map Ult.name live) in
          let extra =
            if not (Runtime.metrics_enabled rt) then ""
            else
              let s = Runtime.metrics rt in
              if s.Metrics.s_sync_blocks > s.Metrics.s_sync_wakeups then
                Printf.sprintf " (%d sync blocks vs %d wakeups: lost wakeup?)"
                  s.Metrics.s_sync_blocks s.Metrics.s_sync_wakeups
              else ""
          in
          violate "deadlock: {%s} blocked with no pending waker%s" names extra
        end
      end
      else blocked_since := Float.nan;
      Engine.post_after eng interval tick
    end
  in
  Engine.post_after eng interval tick

let run_one ?(on_fire = fun ~seq:_ ~fp:_ -> ()) ~decide ~faults ~max_events
    ~until ~deadlock_after ~record_trace (prog : env -> program) =
  let eng = Engine.create ~seed:default_engine_seed () in
  let trace = Trace.create () in
  if record_trace then Trace.enable trace;
  let entries = ref [] in
  let record tag n picked =
    entries := { Trail.tag; n; picked } :: !entries;
    picked
  in
  let ctrl =
    Choice.create
      ~choose:(fun ~n ~tag ~alts -> record tag n (decide K_choose ~n ~tag ~alts))
      ~fault:(fun ~tag ->
        faults && record tag 2 (decide K_fault ~n:2 ~tag ~alts:[||]) = 1)
      ~delay:(fun ~tag ~max ->
        if not faults then 0.0
        else
          max
          *. float_of_int (record tag 4 (decide K_delay ~n:4 ~tag ~alts:[||]))
          /. 3.)
      ~fired:on_fire ()
  in
  Engine.set_controller eng (Some ctrl);
  let cores = ref 0 in
  let failure = ref None in
  let pruned = ref false in
  let rt_ref = ref None in
  (try
     let p = prog { eng; trace } in
     cores := p.cores;
     rt_ref := p.runtime;
     (match p.runtime with
     | Some rt when p.ults <> [] -> watchdog eng rt p.ults ~deadlock_after
     | _ -> ());
     Engine.run ~until ~max_events eng;
     p.oracle ()
   with
  | Pruned -> pruned := true
  | e -> failure := Some (message_of e));
  (* On any failure — oracle violation, watchdog deadlock, crash — grab
     the flight-record dump before the runtime is dropped, so the
     counterexample report can write it next to the trail. *)
  let o_flight =
    match (!failure, !rt_ref) with
    | Some _, Some rt when Runtime.recorder_enabled rt -> Runtime.flight_dump rt
    | _ -> ""
  in
  {
    o_trail = Array.of_list (List.rev !entries);
    o_failure = !failure;
    o_pruned = !pruned;
    o_trace = trace;
    o_cores = !cores;
    o_flight;
    o_parent = Engine.event_parent eng;
  }

(* ------------------------------------------------------------------ *)
(* Counterexamples and reports                                         *)
(* ------------------------------------------------------------------ *)

type counterexample = {
  cx_message : string;  (** what went wrong *)
  cx_seed : int;  (** chooser seed of the failing schedule *)
  cx_strategy : string;  (** strategy that found it ({!strategy_name}) *)
  cx_budget : int;  (** budget of the run that found it *)
  cx_schedule : int;  (** 0-based index of the failing schedule *)
  cx_faults : bool;  (** fault injection was enabled *)
  cx_trail : Trail.t;  (** shrunk trail; replay with [Replay cx_trail] *)
  cx_trace : string;  (** Chrome-trace JSON of the shrunk failing run *)
  cx_flight : string;
      (** binary flight-record dump of the shrunk failing run (empty if
          the program's runtime had no recorder enabled); decode with
          {!Preempt_core.Recorder.decode} or [repro observe --load] *)
}

type report = {
  schedules : int;  (** schedules actually executed *)
  pruned : int;  (** DPOR only: schedules abandoned as redundant *)
  exhausted : bool;  (** DFS/DPOR only: the whole space was covered *)
  result : [ `Ok | `Violation of counterexample ];
}

let describe cx =
  String.concat "\n"
    [
      Printf.sprintf "violation: %s" cx.cx_message;
      Printf.sprintf
        "found by: strategy=%s seed=%d budget=%d (schedule #%d, faults=%b)"
        cx.cx_strategy cx.cx_seed cx.cx_budget cx.cx_schedule cx.cx_faults;
      Printf.sprintf "replay: seed=%d with budget=1, or the shrunk trail"
        cx.cx_seed;
      Printf.sprintf "trail: %s" (Trail.to_string cx.cx_trail);
    ]

(* Greedy shrink toward the default schedule, bounded by [max_replays]
   replays.  Phase 1 binary-searches the shortest failing prefix
   (everything beyond the violation is idle-spin noise, so this kills
   most forced picks at once); phase 2 zeroes runs of forced picks in
   halving chunk sizes, down to single decisions (ddmin-style).  The
   kept trail is always a prefix of the *observed* trail of a failing
   replay, so it is self-consistent by construction.

   Early exits: phase 2 is skipped outright when the phase-1 result has
   no forced picks left, and the chunk loop stops as soon as a full
   pass over the trail attempts no candidate (no chunk contains a
   forced pick — smaller chunk sizes would attempt exactly the same
   nothing).  Returns the replay count so tests can pin the cost. *)
let shrink ~replay ~max_replays trail0 msg0 =
  let best = ref trail0 in
  let best_msg = ref msg0 in
  let attempts = ref 0 in
  let try_cand cand =
    !attempts < max_replays
    && begin
         incr attempts;
         match replay cand with
         | Some (observed, m) ->
             (* Keep at most the candidate's length: entries beyond it
                are all-default by construction of the replay. *)
             let keep = min (Trail.length observed) (Trail.length cand) in
             best := Array.sub observed 0 keep;
             best_msg := m;
             true
         | None -> false
       end
  in
  (* Phase 1: shortest failing prefix (defaults beyond the cut). *)
  let lo = ref 0 in
  let hi = ref (Trail.length !best) in
  while !lo < !hi && !attempts < max_replays do
    let mid = (!lo + !hi) / 2 in
    if try_cand (Array.sub !best 0 mid) then hi := mid else lo := mid + 1
  done;
  (* Phase 2: zero chunks of forced picks, halving the chunk size. *)
  let zero_range c0 c1 =
    let arr = !best in
    let c1 = min c1 (Array.length arr) in
    let any = ref false in
    for j = c0 to c1 - 1 do
      if arr.(j).Trail.picked <> 0 then any := true
    done;
    !any
    && begin
         let cand =
           Array.mapi
             (fun j e ->
               if j >= c0 && j < c1 && e.Trail.picked <> 0 then
                 { e with Trail.picked = 0 }
               else e)
             arr
         in
         ignore (try_cand cand);
         true
       end
  in
  if Trail.forced !best > 0 then begin
    let size = ref (max 1 (Trail.length !best / 2)) in
    let stop = ref false in
    while (not !stop) && !size >= 1 && !attempts < max_replays do
      let n = Trail.length !best in
      let attempted = ref false in
      let i = ref 0 in
      while !i < n && !attempts < max_replays do
        if zero_range !i (!i + !size) then attempted := true;
        i := !i + !size
      done;
      (* No chunk at this size held a forced pick: the trail is already
         all-defaults wherever we could zero, so stop. *)
      if not !attempted then stop := true;
      size := if !size = 1 then 0 else !size / 2
    done
  end;
  (!best, !best_msg, !attempts)

(* ------------------------------------------------------------------ *)
(* Dynamic partial-order reduction                                     *)
(* ------------------------------------------------------------------ *)

(* DPOR in the loom/Flanagan–Godefroid style, specialised to the
   engine's structure: the only reorderable points are equal-timestamp
   event ties ("engine.tie" choice points), where the controller sees
   each alternative's (event id, footprint).  Two events are dependent
   iff both footprints are non-empty and share a comma-separated atom;
   unlabeled events are treated as scheduling-neutral (they commute
   with everything), which makes the reduction sound *relative to the
   program's labeling* — the same contract loom's "declare your shared
   accesses" model uses.  Creation (parent) chains supply the
   program-order part of happens-before: an event never races its own
   ancestors.

   For each consultation depth we keep a node with the picks already
   explored, the picks still to explore (backtrack set), and the sleep
   set inherited at entry.  After each complete execution the race
   analysis walks the fired-event log backwards; for the latest
   dependent, causally-unordered pair (i, j) it adds to node i the
   alternatives that could run j (or one of j's ancestors) first.
   Sleep sets prune schedules whose next event's equivalence class was
   already covered: executions that fire a sleeping event abort with
   {!Pruned} and are counted separately. *)

type dpor_node = {
  nd_tag : string;
  nd_n : int;
  nd_alts : (int * string) array;  (* (event id, footprint); [||] = opaque *)
  nd_sleep : (int * string) list;  (* sleep set at node entry *)
  mutable nd_pick : int;  (* alternative being explored *)
  mutable nd_done : int list;  (* alternatives fully explored *)
  mutable nd_todo : int list;  (* backtrack set: still to explore *)
}

(* Footprints are tiny comma-separated atom sets; dependence is shared
   membership. *)
let footprints_dependent a b =
  a <> "" && b <> ""
  && (a = b
     ||
     let sa = String.split_on_char ',' a in
     let sb = String.split_on_char ',' b in
     List.exists (fun x -> List.mem x sb) sa)

let run_dpor ~budget ~run_plain =
  let stack = ref ([||] : dpor_node array) in
  let exhausted = ref false in
  let schedules = ref 0 in
  let pruned_count = ref 0 in
  let outcome = ref None in
  (* One execution: follow [stack] through its prefix, extend with
     first-non-sleeping defaults past it, maintain the running sleep
     set, log fired events with the node (if any) that chose them. *)
  let execute () =
    let depth = ref 0 in
    let sleep = ref [] in
    let fired_log = ref [] in
    let new_nodes = ref [] in
    let pending_node = ref None in
    let asleep_id sl id = List.exists (fun (sid, _) -> sid = id) sl in
    let decide _kind ~n ~tag ~alts =
      let d = !depth in
      incr depth;
      let nd =
        if d < Array.length !stack then (!stack).(d)
        else begin
          (* First visit at this depth on this branch: explore the
             first alternative whose event is not asleep (for opaque
             points, the default), queue nothing — backtrack picks are
             added only by the race analysis (plus full enumeration
             for opaque points, which DPOR cannot reason about). *)
          let pick =
            if Array.length alts = 0 then 0
            else begin
              let rec first k =
                if k >= n then raise Pruned
                else if asleep_id !sleep (fst alts.(k)) then first (k + 1)
                else k
              in
              first 0
            end
          in
          let todo =
            if Array.length alts = 0 then List.init (n - 1) (fun i -> i + 1)
            else []
          in
          let nd =
            {
              nd_tag = tag;
              nd_n = n;
              nd_alts = alts;
              nd_sleep = !sleep;
              nd_pick = pick;
              nd_done = [];
              nd_todo = todo;
            }
          in
          new_nodes := nd :: !new_nodes;
          nd
        end
      in
      (* Events of already-explored siblings go to sleep below this
         node: any schedule that fires them next repeats a covered
         trace. *)
      if Array.length nd.nd_alts > 0 then begin
        List.iter
          (fun k ->
            let id, fp = nd.nd_alts.(k) in
            if fp <> "" && not (asleep_id !sleep id) then
              sleep := (id, fp) :: !sleep)
          nd.nd_done;
        pending_node := Some nd
      end;
      nd.nd_pick
    in
    let on_fire ~seq ~fp =
      let nd = !pending_node in
      pending_node := None;
      if fp <> "" then begin
        if asleep_id !sleep seq then raise Pruned;
        (* A fired event wakes the sleepers it is dependent with: their
           order relative to the rest now differs from the covered
           trace. *)
        sleep := List.filter (fun (_, sfp) -> not (footprints_dependent sfp fp)) !sleep
      end;
      fired_log := (seq, fp, nd) :: !fired_log
    in
    let one = run_plain ~on_fire decide in
    (one, Array.of_list (List.rev !fired_log), List.rev !new_nodes)
  in
  (* Race analysis: for each labeled event j, find the latest earlier
     labeled event i that is dependent and not j's creation-ancestor.
     If i was chosen at a tie node, make that node also try the
     alternatives that lead to j (j's event itself, or an ancestor of
     j fired between i and j) — reversing the race. *)
  let analyze fired parent_of =
    let len = Array.length fired in
    let pos = Hashtbl.create (max 16 len) in
    Array.iteri (fun i (seq, _, _) -> Hashtbl.replace pos seq i) fired;
    (* Parent seqs are strictly smaller than their children's, so the
       ancestor walk terminates at the first seq <= a. *)
    let ancestor a b =
      let rec up s = if s <= a then s = a else up (parent_of s) in
      a >= 0 && up b
    in
    for j = 0 to len - 1 do
      let sj, fpj, _ = fired.(j) in
      if fpj <> "" then begin
        let rec find i =
          if i < 0 then None
          else
            let si, fpi, ndi = fired.(i) in
            if fpi <> "" && footprints_dependent fpi fpj && not (ancestor si sj)
            then Some (i, ndi)
            else find (i - 1)
        in
        match find (j - 1) with
        | None | Some (_, None) ->
            (* No race, or event i fired as a forced singleton: at that
               point nothing else was co-enabled, so the pair is not
               reorderable (co-enabled same-timestamp events always
               surface as a tie). *)
            ()
        | Some (i, Some nd) ->
            let add k =
              if
                k <> nd.nd_pick
                && (not (List.mem k nd.nd_done))
                && (not (List.mem k nd.nd_todo))
                && not
                     (List.exists
                        (fun (sid, _) -> sid = fst nd.nd_alts.(k))
                        nd.nd_sleep)
              then nd.nd_todo <- nd.nd_todo @ [ k ]
            in
            let cand = ref [] in
            Array.iteri
              (fun k (id, _) ->
                let leads_to_j =
                  id = sj
                  ||
                  match Hashtbl.find_opt pos id with
                  | Some p -> p > i && p <= j && ancestor id sj
                  | None -> false
                in
                if leads_to_j then cand := k :: !cand)
              nd.nd_alts;
            (match !cand with
            | [] ->
                (* Defensive fallback: no alternative provably leads to
                   j — add them all (sound, possibly redundant). *)
                for k = 0 to nd.nd_n - 1 do
                  add k
                done
            | ks -> List.iter add ks)
      end
    done
  in
  (* Move to the next unexplored branch: deepest node with a pending
     backtrack pick wins; fully-explored suffixes are discarded. *)
  let advance () =
    let rec back d =
      if d < 0 then begin
        exhausted := true;
        false
      end
      else begin
        let nd = (!stack).(d) in
        nd.nd_done <- nd.nd_pick :: nd.nd_done;
        match nd.nd_todo with
        | k :: rest ->
            nd.nd_todo <- rest;
            nd.nd_pick <- k;
            stack := Array.sub !stack 0 (d + 1);
            true
        | [] -> back (d - 1)
      end
    in
    back (Array.length !stack - 1)
  in
  let continue_ = ref true in
  while
    !continue_ && Option.is_none !outcome && !schedules < budget
    && not !exhausted
  do
    let one, fired, new_nodes = execute () in
    stack := Array.append !stack (Array.of_list new_nodes);
    incr schedules;
    if one.o_pruned then incr pruned_count
    else begin
      match one.o_failure with
      | Some msg -> outcome := Some (!schedules - 1, one, msg)
      | None -> analyze fired one.o_parent
    end;
    if Option.is_none !outcome then continue_ := advance ()
  done;
  (!schedules, !pruned_count, !exhausted, !outcome)

(* ------------------------------------------------------------------ *)
(* Parallel exploration                                                *)
(* ------------------------------------------------------------------ *)

(* Random/PCT schedules are independent by construction: every schedule
   is fully determined by (strategy, schedule index), so the index
   space can be scanned by several domains at once.  Domains stride the
   index space, publish the smallest violating index through an atomic
   min, and stop as soon as their next index lies beyond it; the winner
   is therefore the same first-violating schedule a sequential scan
   finds, regardless of domain count.  Shrinking runs afterwards in the
   calling domain, so the counterexample is bit-identical too. *)
let scan_parallel ~jobs ~budget ~decider_for ~run_plain =
  let found = Atomic.make max_int in
  let results = Array.make jobs None in
  let worker d () =
    let i = ref d in
    let stop = ref false in
    while (not !stop) && !i < budget do
      if !i > Atomic.get found then stop := true
      else begin
        let one = run_plain (decider_for !i) in
        (match one.o_failure with
        | Some msg ->
            results.(d) <- Some (!i, one, msg);
            let rec publish () =
              let cur = Atomic.get found in
              if !i < cur && not (Atomic.compare_and_set found cur !i) then
                publish ()
            in
            publish ();
            stop := true
        | None -> ());
        i := !i + jobs
      end
    done
  in
  let doms =
    List.init (jobs - 1) (fun d -> Domain.spawn (fun () -> worker (d + 1) ()))
  in
  worker 0 ();
  List.iter Domain.join doms;
  Array.fold_left
    (fun acc r ->
      match (acc, r) with
      | None, r -> r
      | Some (i, _, _), Some (j, _, _) when j < i -> r
      | acc, _ -> acc)
    None results

(* ------------------------------------------------------------------ *)
(* The main loop                                                       *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 1) ?(faults = false) ?(jobs = 1) ?(max_events = 2_000_000)
    ?(until = 30.0) ?(deadlock_after = 0.02) ?(max_shrink_replays = 200)
    ~budget ~strategy prog =
  if budget <= 0 then invalid_arg "Check.run: budget must be positive";
  if jobs <= 0 then invalid_arg "Check.run: jobs must be positive";
  let dfs = { prefix = [||]; exhausted = false } in
  let run_plain ?on_fire ?(record_trace = false) decide =
    run_one ?on_fire ~decide ~faults ~max_events ~until ~deadlock_after
      ~record_trace prog
  in
  (* PCT needs a trail-length horizon to place its change points.  The
     sequential loop adapts it from the previous schedule; that feedback
     is inherently order-dependent, so probe the default schedule once
     and fix the horizon — identical for any job count. *)
  let horizon =
    lazy
      (let probe = run_plain (fun _ ~n:_ ~tag:_ ~alts:_ -> 0) in
       max 16 (Trail.length probe.o_trail))
  in
  let decider_for i =
    match strategy with
    | Random_walk -> random_decider (schedule_seed seed i)
    | Pct 0 ->
        (* No change points to place: the horizon is irrelevant, so skip
           the probe and keep depth 0 a pure default-schedule run. *)
        pct_decider ~depth:0 ~horizon:16 (schedule_seed seed i)
    | Pct d ->
        pct_decider ~depth:d ~horizon:(Lazy.force horizon) (schedule_seed seed i)
    | Dfs -> dfs_decider dfs
    | Dpor -> fun _kind ~n:_ ~tag:_ ~alts:_ -> 0 (* replaced by run_dpor *)
    | Replay tr -> follower tr
  in
  let counterexample i (one : one) msg =
    let replay tr =
      let r = run_plain (follower tr) in
      match r.o_failure with Some m -> Some (r.o_trail, m) | None -> None
    in
    let shrunk, msg', _attempts =
      shrink ~replay ~max_replays:max_shrink_replays one.o_trail msg
    in
    (* Re-execute the shrunk trail with tracing on: confirms the replay
       is deterministic and captures the span dump for the report. *)
    let final = run_plain ~record_trace:true (follower shrunk) in
    let msg'', trail'' =
      match final.o_failure with
      | Some m -> (m, final.o_trail)
      | None -> (msg', shrunk)
    in
    let cx_trace =
      if final.o_cores > 0 && Trace.length final.o_trace > 0 then
        Experiments.Chrome_trace.(
          to_json (of_trace ~cores:final.o_cores final.o_trace))
      else ""
    in
    {
      cx_message = msg'';
      cx_seed = schedule_seed seed i;
      cx_strategy = strategy_name strategy;
      cx_budget = budget;
      cx_schedule = i;
      cx_faults = faults;
      cx_trail = trail'';
      cx_trace;
      cx_flight = (if final.o_failure <> None then final.o_flight else one.o_flight);
    }
  in
  match strategy with
  | Dpor ->
      let schedules, pruned, exhausted, outcome =
        run_dpor ~budget ~run_plain:(fun ~on_fire decide ->
            run_plain ~on_fire decide)
      in
      let result =
        match outcome with
        | None -> `Ok
        | Some (i, one, msg) -> `Violation (counterexample i one msg)
      in
      { schedules; pruned; exhausted; result }
  | (Random_walk | Pct _) when jobs > 1 ->
      (* Force the PCT horizon probe before fanning out: [Lazy.force]
         is not safe to race from several domains. *)
      (match strategy with
      | Pct d when d > 0 -> ignore (Lazy.force horizon)
      | _ -> ());
      (match scan_parallel ~jobs ~budget ~decider_for
               ~run_plain:(fun d -> run_plain d)
       with
      | None -> { schedules = budget; pruned = 0; exhausted = false; result = `Ok }
      | Some (i, one, msg) ->
          {
            schedules = i + 1;
            pruned = 0;
            exhausted = false;
            result = `Violation (counterexample i one msg);
          })
  | _ ->
      let rec loop i =
        if i >= budget then
          { schedules = i; pruned = 0; exhausted = false; result = `Ok }
        else if (match strategy with Dfs -> dfs.exhausted | _ -> false) then
          { schedules = i; pruned = 0; exhausted = true; result = `Ok }
        else begin
          let one = run_plain (decider_for i) in
          (match strategy with Dfs -> dfs_advance dfs one.o_trail | _ -> ());
          match one.o_failure with
          | None -> loop (i + 1)
          | Some msg ->
              {
                schedules = i + 1;
                pruned = 0;
                exhausted = false;
                result = `Violation (counterexample i one msg);
              }
        end
      in
      loop 0

let replay cx prog =
  run ~seed:cx.cx_seed ~faults:cx.cx_faults ~budget:1
    ~strategy:(Replay cx.cx_trail) prog
