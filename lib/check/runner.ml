(** Schedule exploration and fault injection over the deterministic
    simulator (in the spirit of loom / shuttle / PCT).

    Every nondeterministic decision in the stack — engine tie-breaks at
    equal timestamps, preemption-timer firing offsets, KLT-pool picks,
    work-steal victim choice, plus injected faults — is routed through a
    {!Desim.Choice.t} controller.  [run] executes the program under
    [budget] controller-driven schedules, records each consultation into
    a {!Trail.t}, and reports the first invariant violation together
    with a greedily shrunk, deterministically replayable trail. *)

open Desim
open Preempt_core

exception Violation of string

let violate fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt

let require ok fmt =
  Printf.ksprintf (fun m -> if not ok then raise (Violation m)) fmt

(* ------------------------------------------------------------------ *)
(* Programs under test                                                 *)
(* ------------------------------------------------------------------ *)

type env = { eng : Engine.t; trace : Trace.t }

type program = {
  runtime : Runtime.t option;  (** watched by the deadlock oracle *)
  ults : Ult.t list;  (** threads the deadlock oracle tracks *)
  cores : int;  (** for the violation-report trace dump; 0 = no dump *)
  oracle : unit -> unit;  (** post-run invariant check; raise {!Violation} *)
}

let program ?runtime ?(ults = []) ?(cores = 0) ?(oracle = fun () -> ()) () =
  { runtime; ults; cores; oracle }

(* ------------------------------------------------------------------ *)
(* Oracles                                                             *)
(* ------------------------------------------------------------------ *)

(** Mutual-exclusion monitor: raises as soon as two threads are inside
    the same critical section. *)
module Excl = struct
  type t = { ename : string; mutable inside : int; mutable entries : int }

  let create ename = { ename; inside = 0; entries = 0 }

  let enter t =
    t.inside <- t.inside + 1;
    t.entries <- t.entries + 1;
    if t.inside > 1 then
      violate "mutual exclusion violated: %d threads inside %s" t.inside
        t.ename

  let leave t = t.inside <- t.inside - 1

  let critical t f =
    enter t;
    Fun.protect ~finally:(fun () -> leave t) f

  let entries t = t.entries
end

let all_finished rt =
  let n = Runtime.unfinished rt in
  require (n = 0) "liveness: %d thread(s) never finished" n

let no_lost_wakeups rt =
  if Runtime.metrics_enabled rt then begin
    let s = Runtime.metrics rt in
    require
      (s.Metrics.s_sync_blocks = s.Metrics.s_sync_wakeups)
      "lost wakeup: %d sync blocks but only %d wakeups"
      s.Metrics.s_sync_blocks s.Metrics.s_sync_wakeups
  end

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

type strategy =
  | Random_walk  (** independent uniform pick at every choice point *)
  | Pct of int
      (** PCT-style: default schedule with [d] randomly placed change
          points that force a non-default pick (Burckhardt et al.) *)
  | Dfs  (** exhaustive depth-first enumeration (small programs only) *)
  | Replay of Trail.t  (** replay a recorded trail; beyond it, defaults *)

let strategy_name = function
  | Random_walk -> "random"
  | Pct d -> Printf.sprintf "pct:%d" d
  | Dfs -> "dfs"
  | Replay _ -> "replay"

(* All schedules of one [run] share the engine seed; only the chooser
   seed varies, so a counterexample replays from (seed, strategy,
   budget=1) alone.  The mix keeps per-schedule streams decorrelated
   while [schedule_seed seed 0 = seed]. *)
let schedule_seed seed i = seed + (i * 0x9E3779B1)

let default_engine_seed = 42

type kind = K_choose | K_fault | K_delay

(* A decider answers one consultation; the recorder around it writes
   the trail.  Fault and delay consultations reach the decider only
   when fault injection is enabled, so trails stay consistent across
   record / replay regardless of trail contents. *)

let clamp e n = if e.Trail.picked < n then e.Trail.picked else 0

let follower (entries : Trail.t) =
  let pos = ref 0 in
  fun _kind ~n ~tag:_ ->
    if !pos < Array.length entries then begin
      let e = entries.(!pos) in
      incr pos;
      clamp e n
    end
    else 0

let random_decider seed =
  let r = Rng.make seed in
  fun kind ~n ~tag:_ ->
    match kind with
    | K_choose -> Rng.int r n
    | K_fault -> if Rng.int r 8 = 0 then 1 else 0
    | K_delay -> if Rng.int r 8 = 0 then 1 + Rng.int r 3 else 0

let pct_decider ~depth ~horizon seed =
  let r = Rng.make seed in
  let flips = Hashtbl.create (max 1 depth) in
  for _ = 1 to depth do
    Hashtbl.replace flips (Rng.int r (max 1 horizon)) ()
  done;
  let count = ref 0 in
  fun kind ~n ~tag:_ ->
    match kind with
    | K_choose ->
        let i = !count in
        incr count;
        if Hashtbl.mem flips i then Rng.int r n else 0
    | K_fault -> if Rng.int r 8 = 0 then 1 else 0
    | K_delay -> if Rng.int r 8 = 0 then 1 + Rng.int r 3 else 0

(* DFS walks the choice tree leaves-first: run the current prefix with
   defaults past its end, then bump the deepest decision that still has
   an untried alternative.  Every leaf (complete schedule) is visited
   exactly once. *)
type dfs_state = { mutable prefix : Trail.t; mutable exhausted : bool }

let dfs_decider st =
  let pos = ref 0 in
  fun _kind ~n ~tag:_ ->
    if !pos < Array.length st.prefix then begin
      let e = st.prefix.(!pos) in
      incr pos;
      clamp e n
    end
    else 0

let dfs_advance st (observed : Trail.t) =
  let rec find i =
    if i < 0 then None
    else if observed.(i).Trail.picked < observed.(i).Trail.n - 1 then Some i
    else find (i - 1)
  in
  match find (Array.length observed - 1) with
  | None -> st.exhausted <- true
  | Some i ->
      let p = Array.sub observed 0 (i + 1) in
      p.(i) <- { (p.(i)) with Trail.picked = p.(i).Trail.picked + 1 };
      st.prefix <- p

(* ------------------------------------------------------------------ *)
(* Single-schedule execution                                           *)
(* ------------------------------------------------------------------ *)

type one = {
  o_trail : Trail.t;
  o_failure : string option;
  o_trace : Trace.t;
  o_cores : int;
  o_flight : string;
}

let message_of = function
  | Violation m -> m
  | Engine.Deadlock m -> "deadlock: " ^ m
  | Invalid_argument m -> "invalid-arg: " ^ m
  | Failure m -> "failure: " ^ m
  | e -> "exception: " ^ Printexc.to_string e

(* Deadlock / lost-wakeup watchdog: a recurring engine event that fires
   while the runtime is live.  If every unfinished tracked thread stays
   U_blocked for [deadlock_after] of continuous virtual time, nothing
   can ever wake them (all wakers are themselves blocked or gone) and
   the schedule is reported as a deadlock. *)
let watchdog eng rt ults ~deadlock_after =
  let interval = deadlock_after /. 8.0 in
  let blocked_since = ref Float.nan in
  let rec tick () =
    if not (Runtime.is_stopping rt) then begin
      let live = List.filter (fun u -> not (Ult.finished u)) ults in
      if live <> [] && List.for_all Ult.blocked live then begin
        if Float.is_nan !blocked_since then blocked_since := Engine.now eng
        else if Engine.now eng -. !blocked_since >= deadlock_after then begin
          let names = String.concat ", " (List.map Ult.name live) in
          let extra =
            if not (Runtime.metrics_enabled rt) then ""
            else
              let s = Runtime.metrics rt in
              if s.Metrics.s_sync_blocks > s.Metrics.s_sync_wakeups then
                Printf.sprintf " (%d sync blocks vs %d wakeups: lost wakeup?)"
                  s.Metrics.s_sync_blocks s.Metrics.s_sync_wakeups
              else ""
          in
          violate "deadlock: {%s} blocked with no pending waker%s" names extra
        end
      end
      else blocked_since := Float.nan;
      Engine.post_after eng interval tick
    end
  in
  Engine.post_after eng interval tick

let run_one ~decide ~faults ~max_events ~until ~deadlock_after ~record_trace
    (prog : env -> program) =
  let eng = Engine.create ~seed:default_engine_seed () in
  let trace = Trace.create () in
  if record_trace then Trace.enable trace;
  let entries = ref [] in
  let record tag n picked =
    entries := { Trail.tag; n; picked } :: !entries;
    picked
  in
  let ctrl =
    Choice.create
      ~choose:(fun ~n ~tag -> record tag n (decide K_choose ~n ~tag))
      ~fault:(fun ~tag -> faults && record tag 2 (decide K_fault ~n:2 ~tag) = 1)
      ~delay:(fun ~tag ~max ->
        if not faults then 0.0
        else max *. float_of_int (record tag 4 (decide K_delay ~n:4 ~tag)) /. 3.)
      ()
  in
  Engine.set_controller eng (Some ctrl);
  let cores = ref 0 in
  let failure = ref None in
  let rt_ref = ref None in
  (try
     let p = prog { eng; trace } in
     cores := p.cores;
     rt_ref := p.runtime;
     (match p.runtime with
     | Some rt when p.ults <> [] -> watchdog eng rt p.ults ~deadlock_after
     | _ -> ());
     Engine.run ~until ~max_events eng;
     p.oracle ()
   with e -> failure := Some (message_of e));
  (* On any failure — oracle violation, watchdog deadlock, crash — grab
     the flight-record dump before the runtime is dropped, so the
     counterexample report can write it next to the trail. *)
  let o_flight =
    match (!failure, !rt_ref) with
    | Some _, Some rt when Runtime.recorder_enabled rt -> Runtime.flight_dump rt
    | _ -> ""
  in
  {
    o_trail = Array.of_list (List.rev !entries);
    o_failure = !failure;
    o_trace = trace;
    o_cores = !cores;
    o_flight;
  }

(* ------------------------------------------------------------------ *)
(* Counterexamples and reports                                         *)
(* ------------------------------------------------------------------ *)

type counterexample = {
  cx_message : string;  (** what went wrong *)
  cx_seed : int;  (** chooser seed of the failing schedule *)
  cx_strategy : string;  (** strategy that found it ({!strategy_name}) *)
  cx_budget : int;  (** budget of the run that found it *)
  cx_schedule : int;  (** 0-based index of the failing schedule *)
  cx_faults : bool;  (** fault injection was enabled *)
  cx_trail : Trail.t;  (** shrunk trail; replay with [Replay cx_trail] *)
  cx_trace : string;  (** Chrome-trace JSON of the shrunk failing run *)
  cx_flight : string;
      (** binary flight-record dump of the shrunk failing run (empty if
          the program's runtime had no recorder enabled); decode with
          {!Preempt_core.Recorder.decode} or [repro observe --load] *)
}

type report = {
  schedules : int;  (** schedules actually executed *)
  exhausted : bool;  (** DFS only: the whole space was enumerated *)
  result : [ `Ok | `Violation of counterexample ];
}

let describe cx =
  String.concat "\n"
    [
      Printf.sprintf "violation: %s" cx.cx_message;
      Printf.sprintf
        "found by: strategy=%s seed=%d budget=%d (schedule #%d, faults=%b)"
        cx.cx_strategy cx.cx_seed cx.cx_budget cx.cx_schedule cx.cx_faults;
      Printf.sprintf "replay: seed=%d with budget=1, or the shrunk trail"
        cx.cx_seed;
      Printf.sprintf "trail: %s" (Trail.to_string cx.cx_trail);
    ]

(* Greedy shrink toward the default schedule, bounded by [max_replays]
   replays.  Phase 1 binary-searches the shortest failing prefix
   (everything beyond the violation is idle-spin noise, so this kills
   most forced picks at once); phase 2 zeroes runs of forced picks in
   halving chunk sizes, down to single decisions (ddmin-style).  The
   kept trail is always the *observed* trail of a failing replay, so it
   is self-consistent by construction. *)
let shrink ~replay ~max_replays trail0 msg0 =
  let best = ref trail0 in
  let best_msg = ref msg0 in
  let attempts = ref 0 in
  let try_cand cand =
    !attempts < max_replays
    && begin
         incr attempts;
         let one = replay cand in
         match one.o_failure with
         | Some m ->
             best := one.o_trail;
             best_msg := m;
             true
         | None -> false
       end
  in
  (* Phase 1: shortest failing prefix (defaults beyond the cut). *)
  let lo = ref 0 in
  let hi = ref (Trail.length !best) in
  while !lo < !hi && !attempts < max_replays do
    let mid = (!lo + !hi) / 2 in
    if try_cand (Array.sub !best 0 mid) then hi := mid else lo := mid + 1
  done;
  (* Phase 2: zero chunks of forced picks, halving the chunk size. *)
  let zero_range c0 c1 =
    let arr = !best in
    let any = ref false in
    let cand =
      Array.mapi
        (fun j e ->
          if j >= c0 && j < c1 && e.Trail.picked <> 0 then begin
            any := true;
            { e with Trail.picked = 0 }
          end
          else e)
        arr
    in
    if !any then ignore (try_cand cand)
  in
  let size = ref (max 1 (Trail.length !best / 2)) in
  while !size >= 1 && !attempts < max_replays do
    let n = Trail.length !best in
    let i = ref 0 in
    while !i < n && !attempts < max_replays do
      zero_range !i (!i + !size);
      i := !i + !size
    done;
    size := if !size = 1 then 0 else !size / 2
  done;
  (!best, !best_msg)

(* ------------------------------------------------------------------ *)
(* The main loop                                                       *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 1) ?(faults = false) ?(max_events = 2_000_000) ?(until = 30.0)
    ?(deadlock_after = 0.02) ?(max_shrink_replays = 200) ~budget ~strategy prog
    =
  if budget <= 0 then invalid_arg "Check.run: budget must be positive";
  let dfs = { prefix = [||]; exhausted = false } in
  let prev_len = ref 64 in
  let run_plain ?(record_trace = false) decide =
    run_one ~decide ~faults ~max_events ~until ~deadlock_after ~record_trace
      prog
  in
  let decider_for i =
    match strategy with
    | Random_walk -> random_decider (schedule_seed seed i)
    | Pct d -> pct_decider ~depth:d ~horizon:!prev_len (schedule_seed seed i)
    | Dfs -> dfs_decider dfs
    | Replay tr -> follower tr
  in
  let counterexample i (one : one) msg =
    let replay tr = run_plain (follower tr) in
    let shrunk, msg' =
      shrink ~replay ~max_replays:max_shrink_replays one.o_trail msg
    in
    (* Re-execute the shrunk trail with tracing on: confirms the replay
       is deterministic and captures the span dump for the report. *)
    let final = run_plain ~record_trace:true (follower shrunk) in
    let msg'', trail'' =
      match final.o_failure with
      | Some m -> (m, final.o_trail)
      | None -> (msg', shrunk)
    in
    let cx_trace =
      if final.o_cores > 0 && Trace.length final.o_trace > 0 then
        Experiments.Chrome_trace.(
          to_json (of_trace ~cores:final.o_cores final.o_trace))
      else ""
    in
    {
      cx_message = msg'';
      cx_seed = schedule_seed seed i;
      cx_strategy = strategy_name strategy;
      cx_budget = budget;
      cx_schedule = i;
      cx_faults = faults;
      cx_trail = trail'';
      cx_trace;
      cx_flight = (if final.o_failure <> None then final.o_flight else one.o_flight);
    }
  in
  let rec loop i =
    if i >= budget then { schedules = i; exhausted = false; result = `Ok }
    else if (match strategy with Dfs -> dfs.exhausted | _ -> false) then
      { schedules = i; exhausted = true; result = `Ok }
    else begin
      let one = run_plain (decider_for i) in
      prev_len := max 16 (Trail.length one.o_trail);
      (match strategy with Dfs -> dfs_advance dfs one.o_trail | _ -> ());
      match one.o_failure with
      | None -> loop (i + 1)
      | Some msg ->
          {
            schedules = i + 1;
            exhausted = false;
            result = `Violation (counterexample i one msg);
          }
    end
  in
  loop 0

let replay cx prog =
  run ~seed:cx.cx_seed ~faults:cx.cx_faults ~budget:1
    ~strategy:(Replay cx.cx_trail) prog
