(** Ready-made buggy and correct concurrency scenarios over the
    preemptive runtime, with the verdict the checker is expected to
    reach.  Backs the [repro check] CLI subcommand and the
    [@check-smoke] alias. *)

type expect = Pass | Fail

type t = {
  sname : string;
  sdesc : string;
  expect : expect;  (** verdict the checker must reach within [sbudget] *)
  sfaults : bool;  (** run with fault injection enabled *)
  sbudget : int;  (** schedules that suffice for the expected verdict *)
  prog : Runner.env -> Runner.program;
}

val all : t list

val find : string -> t option

val names : unit -> string list
