(** Ready-made buggy and correct concurrency scenarios over the
    preemptive runtime, with the verdict the checker is expected to
    reach.  Backs the [repro check] CLI subcommand and the
    [@check-smoke] / [@lock-suite] aliases.

    The ["lock"] tag groups the {!Preempt_core.Ulock} algorithm suite:
    correct ticket / TTAS / MCS locks that must pass the exclusion,
    FIFO-fairness, liveness and lost-wakeup oracles under preemption
    and fault injection, plus seeded broken variants (unfair ticket,
    racy TTAS, handoff-dropping MCS) the checker must catch.

    The ["pool"] tag ([@pool-smoke]) groups the engine-level model of
    the real fiber runtime's cross-sub-pool overflow steal
    (lib/fiber/sched.ml): the fenced protocol must keep every fiber
    exactly-once under preemption and worker-stall faults, and the
    unfenced-claim variant must be caught double-running a task. *)

type expect = Pass | Fail

type t = {
  sname : string;
  sdesc : string;
  expect : expect;  (** verdict the checker must reach within [sbudget] *)
  sfaults : bool;  (** run with fault injection enabled *)
  sbudget : int;  (** schedules that suffice for the expected verdict *)
  sstrategy : Runner.strategy option;
      (** strategy the scenario is built for (e.g. [Dpor] for programs
          with labeled footprints); [None] = the caller's choice *)
  sexhaust : bool;
      (** the expected verdict includes exhausting the schedule space
          within [sbudget] (DPOR scenarios) *)
  stags : string list;  (** registry groups, e.g. ["lock"] *)
  prog : Runner.env -> Runner.program;
}

val all : t list

val find : string -> t option

(** Scenarios carrying the given tag, in registry order. *)
val find_tag : string -> t list

(** All scenario names, sorted (stable for golden tests). *)
val names : unit -> string list
