(** A trail is the recorded outcome of every controller consultation in
    one simulated schedule, in consultation order.  Because the engine,
    the kernel model and the runtime are deterministic apart from the
    controller, a trail is a complete, replayable encoding of a
    schedule: feed the same picks back and the same execution unfolds.

    [picked = 0] always means "the default" — the outcome the
    uncontrolled runtime would have produced (first tie in insertion
    order, no fault, zero delay).  A trail of all zeros is therefore the
    baseline schedule, and shrinking a counterexample means driving as
    many entries to zero as possible. *)

type entry = {
  tag : string;  (** which choice point ("engine.tie", "steal.victim", ...) *)
  n : int;  (** arity the controller was consulted with *)
  picked : int;  (** chosen alternative, [0 <= picked < n] *)
}

type t = entry array

let length = Array.length

let forced t =
  Array.fold_left (fun acc e -> if e.picked <> 0 then acc + 1 else acc) 0 t

(* Compact fingerprint of the picks only, for deduplicating schedules. *)
let signature t =
  let b = Buffer.create (Array.length t) in
  Array.iter (fun e -> Buffer.add_string b (string_of_int e.picked ^ ".")) t;
  Buffer.contents b

let to_string ?(max_forced = 24) t =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%d choices, %d forced" (length t) (forced t));
  let shown = ref 0 in
  Array.iteri
    (fun i e ->
      if e.picked <> 0 then begin
        incr shown;
        if !shown <= max_forced then
          Buffer.add_string b
            (Printf.sprintf "%s[%d] %s = %d/%d"
               (if !shown = 1 then ": " else ", ")
               i e.tag e.picked e.n)
      end)
    t;
  if !shown > max_forced then
    Buffer.add_string b (Printf.sprintf ", ... (%d more)" (!shown - max_forced));
  Buffer.contents b

let pp fmt t = Format.pp_print_string fmt (to_string t)
