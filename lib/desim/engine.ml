type t = {
  mutable clock : float;
  heap : (unit -> unit) Heap.t;
  root_rng : Rng.t;
  mutable processed : int;
  mutable live : int;
  live_names : (int, string) Hashtbl.t; (* pid -> name *)
  mutable next_pid : int;
  mutable quiescence : unit -> string option;
  mutable controller : Choice.t option;
      (* schedule controller: decides tie-breaks among equal-timestamp
         events; [None] = historical FIFO order, zero overhead *)
  mutable observer : (float -> int -> int -> int -> unit) option;
      (* flight-recorder hook: layers above desim (the kernel) report
         int-coded events [(ts, code, a, b)] through it without
         depending on the recorder's module; [None] = one option check
         per emit site, nothing recorded *)
}

type event = Heap.handle

exception Deadlock of string

let create ?(seed = 42) () =
  {
    clock = 0.0;
    heap = Heap.create ();
    root_rng = Rng.make seed;
    processed = 0;
    live = 0;
    live_names = Hashtbl.create 64;
    next_pid = 0;
    quiescence = (fun () -> None);
    controller = None;
    observer = None;
  }

let set_controller t c = t.controller <- c

let controller t = t.controller

let set_observer t f = t.observer <- f

let observer t = t.observer

let now t = t.clock

let rng t = t.root_rng

let check_future t time =
  if time < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.clock)

let at t time f =
  check_future t time;
  Heap.push_handle t.heap (Float.max time t.clock) f

let after t dt f =
  if dt < 0.0 then invalid_arg "Engine.after: negative delay";
  at t (t.clock +. dt) f

(* Fire-and-forget scheduling: no cancellation handle, no per-event
   allocation beyond the closure itself.  This is the fast path for the
   engine's own process machinery and for kernel events that are never
   cancelled (wakeups, spawn bodies, resumptions). *)
let post t time f =
  check_future t time;
  Heap.push t.heap (Float.max time t.clock) f

let post_after t dt f =
  if dt < 0.0 then invalid_arg "Engine.post_after: negative delay";
  Heap.push t.heap (t.clock +. dt) f

let cancel ev = Heap.cancel ev

let pending ev = Heap.pending ev

let set_quiescence_check t f = t.quiescence <- f

let events_processed t = t.processed

let live_processes t = t.live

let live_process_names t = Hashtbl.fold (fun _ name acc -> name :: acc) t.live_names []

(* ------------------------------------------------------------------ *)
(* Processes.                                                          *)

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Block : (('a -> unit) -> unit) -> 'a Effect.t
  | Self : (t * string) Effect.t

let delay dt = Effect.perform (Delay dt)

let block register = Effect.perform (Block register)

let self_engine () = fst (Effect.perform Self)

let self_name () = snd (Effect.perform Self)

let timestamp () = now (self_engine ())

let spawn t name f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  t.live <- t.live + 1;
  Hashtbl.replace t.live_names pid name;
  let finish () =
    t.live <- t.live - 1;
    Hashtbl.remove t.live_names pid
  in
  let open Effect.Deep in
  let body () =
    match_with f ()
      {
        retc = (fun () -> finish ());
        exnc =
          (fun exn ->
            finish ();
            raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay dt ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    post_after t dt (fun () -> continue k ()))
            | Block register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let fired = ref false in
                    let resume v =
                      if !fired then
                        invalid_arg
                          (Printf.sprintf
                             "Engine: double resume of process %S" name);
                      fired := true;
                      (* Resumption goes through the heap so wakers never
                         run the woken process on their own stack. *)
                      post_after t 0.0 (fun () -> continue k v)
                    in
                    register resume)
            | Self -> Some (fun (k : (a, unit) continuation) -> continue k (t, name))
            | _ -> None);
      }
  in
  post_after t 0.0 body

let overflow t max_events =
  failwith
    (Printf.sprintf "Engine.run: exceeded %d events at t=%g" max_events t.clock)

(* Under a schedule controller, a tie of n equal-timestamp events is a
   choice point: the controller picks which fires first instead of the
   FIFO default. *)
let pop_controlled c heap =
  let n = Heap.tie_count heap in
  if n <= 1 then Heap.pop heap
  else Heap.pop_tie heap (Choice.pick c ~n ~tag:"engine.tie")

(* Dispatch loop.  Cancelled events never surface ([Heap.min_key] skips
   tombstones), so there is no liveness test and — with [min_key]/[pop]
   instead of the option/tuple-returning peek/pop — no allocation per
   dispatched event.  The controller hook is one [match] on [None] per
   event; the controlled arm only runs during schedule exploration. *)
let run ?until ?(max_events = 50_000_000) t =
  let heap = t.heap in
  (match until with
  | None ->
      while not (Heap.is_empty heap) do
        let time = Heap.min_key heap in
        let f =
          match t.controller with
          | None -> Heap.pop heap
          | Some c -> pop_controlled c heap
        in
        t.clock <- time;
        t.processed <- t.processed + 1;
        if t.processed > max_events then overflow t max_events;
        f ()
      done
  | Some limit ->
      let stop = ref false in
      while (not !stop) && not (Heap.is_empty heap) do
        let time = Heap.min_key heap in
        if time > limit then begin
          t.clock <- limit;
          stop := true
        end
        else begin
          let f =
            match t.controller with
            | None -> Heap.pop heap
            | Some c -> pop_controlled c heap
          in
          t.clock <- time;
          t.processed <- t.processed + 1;
          if t.processed > max_events then overflow t max_events;
          f ()
        end
      done);
  if Heap.is_empty t.heap && t.live > 0 then
    match t.quiescence () with
    | Some msg -> raise (Deadlock msg)
    | None -> ()
