type t = {
  mutable clock : float;
  heap : (unit -> unit) Heap.t;
  root_rng : Rng.t;
  mutable processed : int;
  mutable live : int;
  live_names : (int, string) Hashtbl.t; (* pid -> name *)
  mutable next_pid : int;
  mutable quiescence : unit -> string option;
  mutable controller : Choice.t option;
      (* schedule controller: decides tie-breaks among equal-timestamp
         events; [None] = historical FIFO order, zero overhead *)
  mutable observer : (float -> int -> int -> int -> unit) option;
      (* flight-recorder hook: layers above desim (the kernel) report
         int-coded events [(ts, code, a, b)] through it without
         depending on the recorder's module; [None] = one option check
         per emit site, nothing recorded *)
  emeta : (int, string * int) Hashtbl.t;
      (* event seq -> (footprint, parent seq), recorded at push time
         only while a controller is installed.  Parent is the event
         being dispatched when the push happened (-1 for pushes from
         outside the dispatch loop), giving DPOR the creation order;
         footprints label which shared state the event's step touches *)
  mutable cur_seq : int;
      (* seq of the event currently being dispatched in controlled
         mode; -1 outside the dispatch loop or when uncontrolled *)
}

type event = Heap.handle

exception Deadlock of string

let create ?(seed = 42) () =
  {
    clock = 0.0;
    heap = Heap.create ();
    root_rng = Rng.make seed;
    processed = 0;
    live = 0;
    live_names = Hashtbl.create 64;
    next_pid = 0;
    quiescence = (fun () -> None);
    controller = None;
    observer = None;
    emeta = Hashtbl.create 64;
    cur_seq = -1;
  }

let set_controller t c = t.controller <- c

let controller t = t.controller

let set_observer t f = t.observer <- f

let observer t = t.observer

let now t = t.clock

let rng t = t.root_rng

let event_footprint t seq =
  match Hashtbl.find_opt t.emeta seq with Some (fp, _) -> fp | None -> ""

let event_parent t seq =
  match Hashtbl.find_opt t.emeta seq with Some (_, p) -> p | None -> -1

(* Record push-site metadata for the event just pushed.  One [match] on
   [None] when uncontrolled — the default dispatch path stays free of
   the table. *)
let note t fp =
  match t.controller with
  | None -> ()
  | Some _ -> Hashtbl.replace t.emeta (Heap.last_seq t.heap) (fp, t.cur_seq)

let check_future t time =
  if time < t.clock -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.at: time %g is in the past (now %g)" time t.clock)

let at ?(footprint = "") t time f =
  check_future t time;
  let h = Heap.push_handle t.heap (Float.max time t.clock) f in
  note t footprint;
  h

let after ?footprint t dt f =
  if dt < 0.0 then invalid_arg "Engine.after: negative delay";
  at ?footprint t (t.clock +. dt) f

(* Fire-and-forget scheduling: no cancellation handle, no per-event
   allocation beyond the closure itself.  This is the fast path for the
   engine's own process machinery and for kernel events that are never
   cancelled (wakeups, spawn bodies, resumptions). *)
let post ?(footprint = "") t time f =
  check_future t time;
  Heap.push t.heap (Float.max time t.clock) f;
  note t footprint

let post_after ?(footprint = "") t dt f =
  if dt < 0.0 then invalid_arg "Engine.post_after: negative delay";
  Heap.push t.heap (t.clock +. dt) f;
  note t footprint

let cancel ev = Heap.cancel ev

let pending ev = Heap.pending ev

let set_quiescence_check t f = t.quiescence <- f

let events_processed t = t.processed

let live_processes t = t.live

let live_process_names t = Hashtbl.fold (fun _ name acc -> name :: acc) t.live_names []

(* ------------------------------------------------------------------ *)
(* Processes.                                                          *)

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Block : (('a -> unit) -> unit) -> 'a Effect.t
  | Self : (t * string) Effect.t
  | SetFp : string -> unit Effect.t

let delay dt = Effect.perform (Delay dt)

let block register = Effect.perform (Block register)

let self_engine () = fst (Effect.perform Self)

let self_name () = snd (Effect.perform Self)

let timestamp () = now (self_engine ())

let set_footprint fp = Effect.perform (SetFp fp)

let spawn ?(footprint = "") t name f =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  t.live <- t.live + 1;
  Hashtbl.replace t.live_names pid name;
  (* The process's current footprint: every resumption event it posts
     (spawn body, delay expiry, block wakeup) is labeled with it, so
     [Engine.set_footprint] declares what the *next* step touches. *)
  let fp = ref footprint in
  let finish () =
    t.live <- t.live - 1;
    Hashtbl.remove t.live_names pid
  in
  let open Effect.Deep in
  let body () =
    match_with f ()
      {
        retc = (fun () -> finish ());
        exnc =
          (fun exn ->
            finish ();
            raise exn);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Delay dt ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    post_after ~footprint:!fp t dt (fun () -> continue k ()))
            | Block register ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    let fired = ref false in
                    let resume v =
                      if !fired then
                        invalid_arg
                          (Printf.sprintf
                             "Engine: double resume of process %S" name);
                      fired := true;
                      (* Resumption goes through the heap so wakers never
                         run the woken process on their own stack. *)
                      post_after ~footprint:!fp t 0.0 (fun () -> continue k v)
                    in
                    register resume)
            | Self -> Some (fun (k : (a, unit) continuation) -> continue k (t, name))
            | SetFp s ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    fp := s;
                    continue k ())
            | _ -> None);
      }
  in
  post_after ~footprint t 0.0 body

let overflow t max_events =
  failwith
    (Printf.sprintf "Engine.run: exceeded %d events at t=%g" max_events t.clock)

(* Under a schedule controller, a tie of n equal-timestamp events is a
   choice point: the controller picks which fires first instead of the
   FIFO default.  The controller sees each alternative's (event id,
   footprint) so a partial-order explorer can key its analysis on event
   identity; the returned seq is the popped event's id. *)
let pop_controlled t c heap =
  let n = Heap.tie_count heap in
  if n <= 1 then begin
    let seq = Heap.top_seq heap in
    (seq, Heap.pop heap)
  end
  else begin
    let seqs = Heap.tie_seqs heap in
    let alts = Array.map (fun s -> (s, event_footprint t s)) seqs in
    let j = Choice.pick ~alts c ~n ~tag:"engine.tie" in
    (seqs.(j), Heap.pop_tie heap j)
  end

(* Dispatch loop.  Cancelled events never surface ([Heap.min_key] skips
   tombstones), so there is no liveness test and — with [min_key]/[pop]
   instead of the option/tuple-returning peek/pop — no allocation per
   dispatched event.  The controller hook is one [match] on [None] per
   event; the controlled arm only runs during schedule exploration. *)
let dispatch t heap time max_events =
  match t.controller with
  | None ->
      let f = Heap.pop heap in
      t.clock <- time;
      t.processed <- t.processed + 1;
      if t.processed > max_events then overflow t max_events;
      f ()
  | Some c ->
      let seq, f = pop_controlled t c heap in
      t.clock <- time;
      t.processed <- t.processed + 1;
      if t.processed > max_events then overflow t max_events;
      t.cur_seq <- seq;
      Choice.fired c ~seq ~fp:(event_footprint t seq);
      f ();
      t.cur_seq <- -1

let run ?until ?(max_events = 50_000_000) t =
  let heap = t.heap in
  (match until with
  | None ->
      while not (Heap.is_empty heap) do
        dispatch t heap (Heap.min_key heap) max_events
      done
  | Some limit ->
      let stop = ref false in
      while (not !stop) && not (Heap.is_empty heap) do
        let time = Heap.min_key heap in
        if time > limit then begin
          t.clock <- limit;
          stop := true
        end
        else dispatch t heap time max_events
      done);
  if Heap.is_empty t.heap && t.live > 0 then
    match t.quiescence () with
    | Some msg -> raise (Deadlock msg)
    | None -> ()
