(** 4-ary array min-heap with stable ordering and O(1) lazy cancellation.

    Elements are ordered by a [float] key; ties are broken by insertion
    sequence number, so two elements with equal keys pop in insertion
    order.  This stability is what makes the simulation deterministic:
    the pop sequence is fixed by the [(key, seq)] total order regardless
    of the heap's internal layout.

    The store is four parallel arrays (struct-of-arrays) so the hot
    sift loops compare unboxed floats; cancellation marks a tombstone in
    O(1) and dead entries are skipped at the root or bulk-compacted once
    they outnumber live ones. *)

type 'a t

(** A cancellation handle for one pushed element.  Handles are
    self-contained: cancelling needs no reference to the heap. *)
type handle

val create : unit -> 'a t

(** Live elements (pushed, not yet popped or cancelled). *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h key v] inserts [v] with priority [key].  Allocates no
    handle: use for elements that are never cancelled. *)
val push : 'a t -> float -> 'a -> unit

(** [push_handle h key v] inserts [v] and returns a handle that can
    cancel it later. *)
val push_handle : 'a t -> float -> 'a -> handle

(** [cancel hn] marks the element as a tombstone in O(1) — no heap
    traversal.  Returns [true] on the first call while the element is
    still pending, [false] if it was already popped or cancelled. *)
val cancel : handle -> bool

(** [pending hn] is [true] until the element is popped or cancelled. *)
val pending : handle -> bool

(** [min_key h] returns the minimum live key without allocating.
    @raise Not_found if the heap has no live element. *)
val min_key : 'a t -> float

(** [pop h] removes and returns the minimum live element's value.
    @raise Not_found if the heap has no live element. *)
val pop : 'a t -> 'a

(** [pop_min h] removes and returns the minimum live (key, value).
    @raise Not_found if the heap has no live element. *)
val pop_min : 'a t -> float * 'a

(** [peek_min h] returns the minimum live element without removing it. *)
val peek_min : 'a t -> (float * 'a) option

(** [tie_count h] is the number of live elements whose key equals the
    minimum key (0 on an empty heap).  O(size) scan — intended for the
    schedule-exploration path, not the default dispatch loop. *)
val tie_count : 'a t -> int

(** Sequence number assigned to the most recent {!push} — a stable
    identity for the element across its heap lifetime (the engine's
    event id during schedule exploration).  [-1] before any push. *)
val last_seq : 'a t -> int

(** Sequence number of the minimum live element (the one {!pop} would
    remove).  @raise Not_found if the heap has no live element. *)
val top_seq : 'a t -> int

(** [tie_seqs h] lists the sequence numbers of the live minimum-key
    elements in insertion order, so [tie_seqs h].(j) identifies the
    element [pop_tie h j] would remove.  O(size) scan, exploration
    path only.  [[||]] on an empty heap. *)
val tie_seqs : 'a t -> int array

(** [pop_tie h j] removes and returns the [j]-th (in insertion order,
    0-based) of the live minimum-key elements.  [pop_tie h 0] is {!pop}.
    @raise Not_found on an empty heap.
    @raise Invalid_argument if [j] is not below {!tie_count}. *)
val pop_tie : 'a t -> int -> 'a

(** [clear h] removes every element.  Handles issued before the clear
    stay valid to cancel but refer to elements that no longer exist. *)
val clear : 'a t -> unit

(** [to_list h] returns live elements in unspecified order (testing aid). *)
val to_list : 'a t -> (float * 'a) list
