(** Pluggable decision source for nondeterministic choice points.

    The simulator is deterministic: event ties pop in insertion order
    and every stochastic decision draws from a seeded {!Rng}.  A
    [Choice.t] installed on an engine ({!Engine.set_controller})
    overrides those decisions at the named choice points, so a schedule
    explorer — rather than the default order — picks what happens next.
    Each consultation carries a [tag] naming the point (e.g.
    ["engine.tie"], ["steal.victim"], ["timer.fire"]), which recorders
    use to build replayable schedule trails.

    Contract for all three decision kinds: the "zero" answer (index 0,
    no fault, zero delay) must reproduce the uncontrolled behaviour, so
    a trail of all-defaults is the same schedule as no controller. *)

type t = {
  mutable choose : n:int -> tag:string -> alts:(int * string) array -> int;
      (** [choose ~n ~tag ~alts] picks an alternative in [[0, n)]; 0 is
          the default (what the uncontrolled simulator would do).
          [alts], when non-empty, identifies the alternatives: element
          [j] is the [(event id, footprint)] of the event that firing
          alternative [j] would dispatch (engine tie-breaks supply it;
          opaque choice points pass [[||]]).  Partial-order reduction
          keys on these ids; strategies that don't may ignore them. *)
  mutable fault : tag:string -> bool;
      (** Fault-injection predicate: [true] makes the tagged point
          misbehave (drop a timer fire, fail a pool refill, …). *)
  mutable delay : tag:string -> max:float -> float;
      (** Extra latency in [[0, max]] injected at the tagged point. *)
  mutable fired : seq:int -> fp:string -> unit;
      (** Called by the controlled engine for {e every} dispatched
          event (tie or not) with the event's id and footprint, before
          its callback runs.  This is the execution feed a DPOR
          explorer builds happens-before from.  Default: ignore. *)
}

(** [create ()] is the identity controller: default choices, no faults,
    no delays.  Override fields directly or via the optional args. *)
val create :
  ?choose:(n:int -> tag:string -> alts:(int * string) array -> int) ->
  ?fault:(tag:string -> bool) ->
  ?delay:(tag:string -> max:float -> float) ->
  ?fired:(seq:int -> fp:string -> unit) ->
  unit ->
  t

(** [pick c ~n ~tag] consults [choose] and range-checks the answer.
    [n <= 1] short-circuits to 0 without consulting the controller.
    [alts] defaults to [[||]] (opaque choice point).
    @raise Invalid_argument on an out-of-range pick. *)
val pick : ?alts:(int * string) array -> t -> n:int -> tag:string -> int

(** [fired c ~seq ~fp] invokes the {!field-fired} hook. *)
val fired : t -> seq:int -> fp:string -> unit

val fault : t -> tag:string -> bool

(** @raise Invalid_argument if the controller answers outside [0, max]. *)
val delay : t -> tag:string -> max:float -> float
