(** Pluggable decision source for nondeterministic choice points.

    The simulator is deterministic: event ties pop in insertion order
    and every stochastic decision draws from a seeded {!Rng}.  A
    [Choice.t] installed on an engine ({!Engine.set_controller})
    overrides those decisions at the named choice points, so a schedule
    explorer — rather than the default order — picks what happens next.
    Each consultation carries a [tag] naming the point (e.g.
    ["engine.tie"], ["steal.victim"], ["timer.fire"]), which recorders
    use to build replayable schedule trails.

    Contract for all three decision kinds: the "zero" answer (index 0,
    no fault, zero delay) must reproduce the uncontrolled behaviour, so
    a trail of all-defaults is the same schedule as no controller. *)

type t = {
  mutable choose : n:int -> tag:string -> int;
      (** [choose ~n ~tag] picks an alternative in [[0, n)]; 0 is the
          default (what the uncontrolled simulator would do). *)
  mutable fault : tag:string -> bool;
      (** Fault-injection predicate: [true] makes the tagged point
          misbehave (drop a timer fire, fail a pool refill, …). *)
  mutable delay : tag:string -> max:float -> float;
      (** Extra latency in [[0, max]] injected at the tagged point. *)
}

(** [create ()] is the identity controller: default choices, no faults,
    no delays.  Override fields directly or via the optional args. *)
val create :
  ?choose:(n:int -> tag:string -> int) ->
  ?fault:(tag:string -> bool) ->
  ?delay:(tag:string -> max:float -> float) ->
  unit ->
  t

(** [pick c ~n ~tag] consults [choose] and range-checks the answer.
    [n <= 1] short-circuits to 0 without consulting the controller.
    @raise Invalid_argument on an out-of-range pick. *)
val pick : t -> n:int -> tag:string -> int

val fault : t -> tag:string -> bool

(** @raise Invalid_argument if the controller answers outside [0, max]. *)
val delay : t -> tag:string -> max:float -> float
