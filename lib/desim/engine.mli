(** Discrete-event simulation engine with effects-based processes.

    The engine owns a virtual clock and an event heap.  Simulation code
    runs as {e processes}: ordinary OCaml functions that perform the
    effects below to advance virtual time or to suspend until woken.
    Event callbacks and process resumptions are totally ordered by
    [(time, insertion sequence)], so a run is deterministic.

    Processes are resumed through the event heap rather than inline, so
    waking another process never grows the waker's stack. *)

type t

(** Handle to a scheduled event, used for cancellation. *)
type event

exception Deadlock of string
(** Raised by {!run} when [detect_quiescence] callbacks report stuck
    processes after the heap drains (see {!set_quiescence_check}). *)

val create : ?seed:int -> unit -> t

(** Simulation clock, in seconds. *)
val now : t -> float

(** Root RNG of this engine ({!Rng.split} it per component). *)
val rng : t -> Rng.t

(** [set_controller t c] installs (or removes) a schedule controller.
    With a controller, a tie of [n] equal-timestamp events becomes a
    choice point (tag ["engine.tie"]): the controller picks which event
    fires first instead of the FIFO default.  Other simulator layers
    (kernel timers, futexes, the runtime's schedulers) consult the same
    controller for their own choice points.  [None] (the default)
    restores the historical deterministic order. *)
val set_controller : t -> Choice.t option -> unit

(** The installed schedule controller, if any. *)
val controller : t -> Choice.t option

(** [set_observer t f] installs (or removes) an event observer: a hook
    through which layers built on the engine (the simulated kernel)
    report int-coded events [f ts code a b] to a flight recorder owned
    by a layer they cannot depend on (the runtime).  [None] (the
    default) reduces every emit site to a single option check. *)
val set_observer : t -> (float -> int -> int -> int -> unit) option -> unit

(** The installed event observer, if any. *)
val observer : t -> (float -> int -> int -> int -> unit) option

(** [after t dt f] schedules callback [f] to run [dt >= 0] seconds from
    now.  Callbacks run outside any process context.  [footprint]
    (default [""]) labels which shared state the callback touches, for
    partial-order reduction — see {!event_footprint}. *)
val after : ?footprint:string -> t -> float -> (unit -> unit) -> event

(** [at t time f] schedules [f] at absolute [time >= now]. *)
val at : ?footprint:string -> t -> float -> (unit -> unit) -> event

(** [post t time f] schedules [f] at absolute [time >= now] with no
    cancellation handle — the zero-allocation fast path for events that
    are never cancelled (wakeups, resumptions, spawns). *)
val post : ?footprint:string -> t -> float -> (unit -> unit) -> unit

(** [post_after t dt f] is [post] at [dt >= 0] seconds from now. *)
val post_after : ?footprint:string -> t -> float -> (unit -> unit) -> unit

(** [cancel ev] prevents a pending event from firing.  Returns [false]
    if it already fired or was cancelled. *)
val cancel : event -> bool

(** True while the event has neither fired nor been cancelled. *)
val pending : event -> bool

(** [spawn t name f] creates a process running [f ()].  It starts at the
    current time, after already-queued events.  An exception escaping
    [f] aborts the whole run.  [footprint] (default [""]) labels the
    process's steps for partial-order reduction; change it from inside
    the process with {!set_footprint}. *)
val spawn : ?footprint:string -> t -> string -> (unit -> unit) -> unit

(** Number of spawned processes that have not yet returned. *)
val live_processes : t -> int

(** Names of spawned processes that have not yet returned (testing aid). *)
val live_process_names : t -> string list

(** [run t] processes events until the heap is empty or [until] is
    reached.  [max_events] guards against runaway simulations.
    @raise Deadlock if the heap drains while a quiescence check fails. *)
val run : ?until:float -> ?max_events:int -> t -> unit

(** [set_quiescence_check t f] registers [f]; when the heap drains with
    live processes remaining, [f ()] should describe why that is an
    error (returning [Some msg] raises {!Deadlock}) or [None] to accept
    it (e.g. daemon processes). Default: accept. *)
val set_quiescence_check : t -> (unit -> string option) -> unit

(** Total events processed so far. *)
val events_processed : t -> int

(** {1 Event metadata — schedule-exploration support}

    While a controller is installed, every pushed event is recorded
    with a {e footprint} (a comma-separated set of atoms naming the
    shared state its step touches; [""] = unlabeled) and a {e parent}
    (the id of the event being dispatched when the push happened, [-1]
    for pushes from outside the dispatch loop).  Event ids are heap
    insertion sequence numbers: stable, unique per run, and the same
    ids the controller sees in [alts] and [fired].  Without a
    controller nothing is recorded and both accessors return the
    don't-know value. *)

(** Footprint of event [seq]; [""] if unlabeled or unknown. *)
val event_footprint : t -> int -> string

(** Parent (creating event) of event [seq]; [-1] if unknown. *)
val event_parent : t -> int -> int

(** {1 Effects — to be performed from process context only} *)

(** Suspend the current process for [dt] virtual seconds. *)
val delay : float -> unit

(** [block register] suspends the current process; [register resume] is
    called immediately with a one-shot [resume] function that any event
    callback (or other process) may later call to resume the process
    with a value. Calling [resume] twice raises [Invalid_argument]. *)
val block : (('a -> unit) -> unit) -> 'a

(** The engine the current process belongs to. *)
val self_engine : unit -> t

(** Name of the current process. *)
val self_name : unit -> string

(** Current virtual time, from process context. *)
val timestamp : unit -> float

(** [set_footprint fp] relabels the current process: its subsequent
    resumption events (delay expiries, block wakeups) carry footprint
    [fp], i.e. it declares what the process's {e next} steps touch.
    Atoms are comma-separated; two events are treated as dependent by
    the DPOR explorer iff their footprints share an atom. *)
val set_footprint : string -> unit
