(* Pluggable decision source for the simulator's nondeterministic choice
   points.  When no controller is installed every choice point falls
   back to its historical behaviour (FIFO tie-breaks, RNG draws, no
   faults), so the hooks cost one [match] on the hot paths.  With a
   controller installed, an explorer — not the RNG — decides what runs
   next, which is what lets [Check] enumerate and replay schedules. *)

type t = {
  mutable choose : n:int -> tag:string -> alts:(int * string) array -> int;
      (* pick an alternative in [0, n); 0 must mean "the default".
         [alts] describes the alternatives as (event id, footprint)
         pairs when the caller knows them (engine tie-breaks); [[||]]
         when the choice is opaque (pool picks, steal victims, …) *)
  mutable fault : tag:string -> bool;
      (* fault-injection points: [true] makes the point misbehave *)
  mutable delay : tag:string -> max:float -> float;
      (* extra latency in [0, max] injected at the point, 0 = none *)
  mutable fired : seq:int -> fp:string -> unit;
      (* notification that the controlled engine dispatched event [seq]
         carrying footprint [fp] — fed to partial-order reduction; the
         default ignores it *)
}

let create ?(choose = fun ~n:_ ~tag:_ ~alts:_ -> 0)
    ?(fault = fun ~tag:_ -> false) ?(delay = fun ~tag:_ ~max:_ -> 0.0)
    ?(fired = fun ~seq:_ ~fp:_ -> ()) () =
  { choose; fault; delay; fired }

let pick ?(alts = [||]) c ~n ~tag =
  if n <= 1 then 0
  else begin
    let k = c.choose ~n ~tag ~alts in
    if k < 0 || k >= n then
      invalid_arg (Printf.sprintf "Choice: %s picked %d of %d" tag k n);
    k
  end

let fired c ~seq ~fp = c.fired ~seq ~fp

let fault c ~tag = c.fault ~tag

let delay c ~tag ~max =
  let d = c.delay ~tag ~max in
  if d < 0.0 || d > max then
    invalid_arg (Printf.sprintf "Choice: %s delay %g outside [0, %g]" tag d max);
  d
