(* 4-ary min-heap in struct-of-arrays layout with O(1) lazy cancellation.

   Ordering is by (key, seq): ties on the float key break by insertion
   sequence number, so equal-key elements pop in insertion order.  That
   total order is what makes the simulation deterministic, and it is a
   property of the *element*, not of the heap layout — a 4-ary heap, a
   compacted heap and the old binary heap all pop the same sequence.

   Layout: four parallel arrays (keys/seqs/vals/hnds) instead of an
   array of records.  [keys] is a flat float array, so the sift loops
   compare unboxed floats with no pointer chasing; a 4-ary shape halves
   tree depth versus binary, trading slightly wider sibling scans (which
   stay inside one or two cache lines) for fewer levels.

   Cancellation is lazy: [cancel] just flips the handle's state and
   bumps a shared dead-entry counter — no heap traversal, no heap
   argument.  Tombstones are skipped when they surface at the root and
   bulk-compacted once they outnumber live entries. *)

(* state: 0 = pending (stored in some heap), 1 = popped, 2 = cancelled.
   [cell] is the owning heap's dead-entry counter, captured at push so
   cancel can account for the tombstone without a heap argument. *)
type handle = { mutable state : int; cell : int ref }

(* Shared sentinel for plain (non-cancellable) pushes: no allocation per
   push, recognized by physical equality in pop/compact. *)
let no_handle = { state = 0; cell = ref 0 }

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable hnds : handle array;
  mutable size : int;
  mutable next_seq : int;
  mutable dead : int ref;
}

let create () =
  {
    keys = [||];
    seqs = [||];
    vals = [||];
    hnds = [||];
    size = 0;
    next_seq = 0;
    dead = ref 0;
  }

let length h = h.size - !(h.dead)

let is_empty h = length h = 0

let cancel hn =
  if hn.state = 0 then begin
    hn.state <- 2;
    hn.cell := !(hn.cell) + 1;
    true
  end
  else false

let pending hn = hn.state = 0

(* ------------------------------------------------------------------ *)
(* Sifting.  Hole-based: the moving element sits in locals while
   parents/children shift, one write per level instead of a swap. *)

let sift_up h i0 =
  let keys = h.keys and seqs = h.seqs and vals = h.vals and hnds = h.hnds in
  let key = Array.unsafe_get keys i0 and seq = Array.unsafe_get seqs i0 in
  let v = Array.unsafe_get vals i0 and hn = Array.unsafe_get hnds i0 in
  let i = ref i0 in
  let moving = ref true in
  while !moving && !i > 0 do
    let p = (!i - 1) / 4 in
    let pk = Array.unsafe_get keys p in
    if key < pk || (key = pk && seq < Array.unsafe_get seqs p) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set vals !i (Array.unsafe_get vals p);
      Array.unsafe_set hnds !i (Array.unsafe_get hnds p);
      i := p
    end
    else moving := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i v;
  Array.unsafe_set hnds !i hn

let sift_down h i0 =
  let size = h.size in
  let keys = h.keys and seqs = h.seqs and vals = h.vals and hnds = h.hnds in
  let key = Array.unsafe_get keys i0 and seq = Array.unsafe_get seqs i0 in
  let v = Array.unsafe_get vals i0 and hn = Array.unsafe_get hnds i0 in
  let i = ref i0 in
  let moving = ref true in
  while !moving do
    let c1 = (4 * !i) + 1 in
    if c1 >= size then moving := false
    else begin
      let m = ref c1 in
      let mk = ref (Array.unsafe_get keys c1) in
      let ms = ref (Array.unsafe_get seqs c1) in
      let last = if c1 + 3 < size then c1 + 3 else size - 1 in
      for c = c1 + 1 to last do
        let ck = Array.unsafe_get keys c in
        if ck < !mk || (ck = !mk && Array.unsafe_get seqs c < !ms) then begin
          m := c;
          mk := ck;
          ms := Array.unsafe_get seqs c
        end
      done;
      if !mk < key || (!mk = key && !ms < seq) then begin
        Array.unsafe_set keys !i !mk;
        Array.unsafe_set seqs !i !ms;
        Array.unsafe_set vals !i (Array.unsafe_get vals !m);
        Array.unsafe_set hnds !i (Array.unsafe_get hnds !m);
        i := !m
      end
      else moving := false
    end
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i v;
  Array.unsafe_set hnds !i hn

(* ------------------------------------------------------------------ *)
(* Storage. *)

let ensure_capacity h v =
  let cap = Array.length h.keys in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nkeys = Array.make ncap 0.0 in
    let nseqs = Array.make ncap 0 in
    (* The pushed value doubles as the fill element, so the generic
       array never needs a manufactured dummy. *)
    let nvals = Array.make ncap v in
    let nhnds = Array.make ncap no_handle in
    Array.blit h.keys 0 nkeys 0 h.size;
    Array.blit h.seqs 0 nseqs 0 h.size;
    Array.blit h.vals 0 nvals 0 h.size;
    Array.blit h.hnds 0 nhnds 0 h.size;
    h.keys <- nkeys;
    h.seqs <- nseqs;
    h.vals <- nvals;
    h.hnds <- nhnds
  end

(* Drop every tombstone and re-heapify in place.  Heapify permutes the
   layout but the pop order is fixed by the (key, seq) total order, so
   determinism is unaffected. *)
let compact h =
  let n = h.size in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let hn = Array.unsafe_get h.hnds i in
    if hn == no_handle || hn.state = 0 then begin
      if !j <> i then begin
        Array.unsafe_set h.keys !j (Array.unsafe_get h.keys i);
        Array.unsafe_set h.seqs !j (Array.unsafe_get h.seqs i);
        Array.unsafe_set h.vals !j (Array.unsafe_get h.vals i);
        Array.unsafe_set h.hnds !j hn
      end;
      incr j
    end
  done;
  h.size <- !j;
  h.dead := 0;
  if !j > 1 then
    for i = (!j - 2) / 4 downto 0 do
      sift_down h i
    done

let push_with h key v hn =
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  let dead = !(h.dead) in
  if dead > 64 && dead > h.size - dead then compact h;
  ensure_capacity h v;
  let i = h.size in
  h.size <- i + 1;
  h.keys.(i) <- key;
  h.seqs.(i) <- seq;
  h.vals.(i) <- v;
  h.hnds.(i) <- hn;
  sift_up h i

let push h key v = push_with h key v no_handle

let push_handle h key v =
  let hn = { state = 0; cell = h.dead } in
  push_with h key v hn;
  hn

(* ------------------------------------------------------------------ *)
(* Removal. *)

let remove_top h =
  let n = h.size - 1 in
  h.size <- n;
  if n > 0 then begin
    h.keys.(0) <- h.keys.(n);
    h.seqs.(0) <- h.seqs.(n);
    h.vals.(0) <- h.vals.(n);
    h.hnds.(0) <- h.hnds.(n);
    sift_down h 0
  end

(* Pop cancelled entries off the root until a live one (or nothing)
   surfaces.  Amortized O(log n) per cancelled event, same as the eager
   removal it replaces, but paid only when a tombstone reaches the top. *)
let rec prune_top h =
  if h.size > 0 then begin
    let hn = h.hnds.(0) in
    if hn != no_handle && hn.state = 2 then begin
      h.dead := !(h.dead) - 1;
      remove_top h;
      prune_top h
    end
  end

let min_key h =
  prune_top h;
  if h.size = 0 then raise Not_found;
  h.keys.(0)

let pop h =
  prune_top h;
  if h.size = 0 then raise Not_found;
  let v = h.vals.(0) in
  let hn = h.hnds.(0) in
  if hn != no_handle then hn.state <- 1;
  remove_top h;
  v

let pop_min h =
  prune_top h;
  if h.size = 0 then raise Not_found;
  let k = h.keys.(0) in
  (k, pop h)

(* ------------------------------------------------------------------ *)
(* Tie inspection — the engine's schedule-exploration hook.  Both
   functions are O(size) scans; they are only called when a schedule
   controller is installed, never on the default dispatch path. *)

let live hn = hn == no_handle || hn.state = 0

let last_seq h = h.next_seq - 1

let top_seq h =
  prune_top h;
  if h.size = 0 then raise Not_found;
  h.seqs.(0)

let tie_seqs h =
  prune_top h;
  if h.size = 0 then [||]
  else begin
    let k = h.keys.(0) in
    let acc = ref [] in
    for i = h.size - 1 downto 0 do
      if live (Array.unsafe_get h.hnds i) && Array.unsafe_get h.keys i = k then
        acc := h.seqs.(i) :: !acc
    done;
    let a = Array.of_list !acc in
    Array.sort compare a;
    a
  end

let tie_count h =
  prune_top h;
  if h.size = 0 then 0
  else begin
    let k = h.keys.(0) in
    let n = ref 0 in
    for i = 0 to h.size - 1 do
      if live (Array.unsafe_get h.hnds i) && Array.unsafe_get h.keys i = k then
        incr n
    done;
    !n
  end

(* Remove the element at [idx], restoring the heap property for the
   element moved into its place: sift it up (tracking it by its unique
   seq), and only if it did not move, sift it down. *)
let remove_at h idx =
  let last = h.size - 1 in
  h.size <- last;
  if idx < last then begin
    h.keys.(idx) <- h.keys.(last);
    h.seqs.(idx) <- h.seqs.(last);
    h.vals.(idx) <- h.vals.(last);
    h.hnds.(idx) <- h.hnds.(last);
    let seq = h.seqs.(idx) in
    sift_up h idx;
    if h.seqs.(idx) = seq then sift_down h idx
  end

let pop_tie h j =
  prune_top h;
  if h.size = 0 then raise Not_found;
  if j = 0 then pop h
  else begin
    let k = h.keys.(0) in
    let idxs = ref [] in
    for i = h.size - 1 downto 0 do
      if live (Array.unsafe_get h.hnds i) && Array.unsafe_get h.keys i = k then
        idxs := i :: !idxs
    done;
    let idxs = List.sort (fun a b -> compare h.seqs.(a) h.seqs.(b)) !idxs in
    match List.nth_opt idxs j with
    | None -> invalid_arg (Printf.sprintf "Heap.pop_tie: index %d of %d ties" j (List.length idxs))
    | Some idx ->
        let v = h.vals.(idx) in
        let hn = h.hnds.(idx) in
        if hn != no_handle then hn.state <- 1;
        remove_at h idx;
        v
  end

let peek_min h =
  prune_top h;
  if h.size = 0 then None else Some (h.keys.(0), h.vals.(0))

let clear h =
  h.keys <- [||];
  h.seqs <- [||];
  h.vals <- [||];
  h.hnds <- [||];
  h.size <- 0;
  (* Fresh counter: handles from before the clear keep the old cell, so
     a late cancel can't corrupt the new heap's dead accounting. *)
  h.dead <- ref 0

let to_list h =
  let acc = ref [] in
  for i = h.size - 1 downto 0 do
    let hn = h.hnds.(i) in
    if hn == no_handle || hn.state = 0 then acc := (h.keys.(i), h.vals.(i)) :: !acc
  done;
  !acc
