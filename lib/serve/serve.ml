(* Open-loop serving workload on the real fiber runtime — the
   "millions of users" scenario: an arrival process (Poisson or on/off
   bursty) injects short-lived request fibers at a configured offered
   rate, regardless of how fast the pool completes them (open loop, so
   overload actually builds a queue instead of throttling the client),
   and per-request sojourn times land in [Metrics.Hist] log-scale
   histograms, one per service class, reported as p50/p99/p99.9.

   The injector is the main fiber on worker 0: it spins on the wall
   clock between arrivals and pushes every request through the
   external submission path ([Fiber.submit]), so requests distribute
   round-robin across the pool like any outside traffic and worker 0
   effectively becomes the load-generator core ([domains - 1] workers
   serve).  Sojourn is measured from the request's *scheduled* arrival
   instant, not the submit call — if the injector itself falls behind
   under overload, that lateness is queueing delay and counts.

   The arrival schedule is a pure function of the config (seeded
   xorshift), so two runs offer byte-identical request sequences and
   test_serve pins the process shapes without touching domains. *)

module Quantum = Fiber.Quantum
module Hist = Preempt_core.Metrics.Hist

let wall = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Configuration. *)

type arrival =
  | Poisson
  | Bursty of { period : float; on_frac : float }
      (* all traffic arrives inside the first [on_frac] of every
         [period]-second window, at rate/on_frac (off-rate 0); the mean
         offered rate stays [rate] *)

type cls = Short | Long

type config = {
  rate : float;  (* offered requests per second, both classes together *)
  duration : float;  (* injection horizon in seconds *)
  long_frac : float;  (* fraction of requests in the Long class *)
  short_service : float;  (* spin-work seconds per Short request *)
  long_service : float;  (* spin-work seconds per Long request *)
  arrival : arrival;
  seed : int;
  domains : int;
  preempt_interval : float option;
  adaptive : bool;
  quantum_min : float option;
  quantum_max : float option;
  recorder : bool;  (* arm the flight recorder (steals, quantum moves) *)
  telemetry : bool;  (* arm live telemetry (per-worker time series) *)
}

let default =
  {
    rate = 20_000.0;
    duration = 1.0;
    long_frac = 0.05;
    short_service = 20e-6;
    long_service = 2e-3;
    arrival = Poisson;
    seed = 42;
    domains = Fiber.Config.default_domains () + 1;
    preempt_interval = Some 2e-3;
    adaptive = false;
    quantum_min = None;
    quantum_max = None;
    recorder = false;
    telemetry = false;
  }

let reject field value requirement =
  invalid_arg
    (Printf.sprintf "Serve: %s = %s (must be %s)" field value requirement)

let validate c =
  if not (c.rate > 0.0) then
    reject "rate" (Printf.sprintf "%g" c.rate) "positive";
  if not (c.duration > 0.0) then
    reject "duration" (Printf.sprintf "%g" c.duration) "positive";
  if not (c.long_frac >= 0.0 && c.long_frac <= 1.0) then
    reject "long_frac" (Printf.sprintf "%g" c.long_frac) "within 0..1";
  if not (c.short_service > 0.0) then
    reject "short_service" (Printf.sprintf "%g" c.short_service) "positive";
  if not (c.long_service > 0.0) then
    reject "long_service" (Printf.sprintf "%g" c.long_service) "positive";
  (match c.arrival with
  | Poisson -> ()
  | Bursty { period; on_frac } ->
      if not (period > 0.0) then
        reject "arrival.period" (Printf.sprintf "%g" period) "positive";
      if not (on_frac > 0.0 && on_frac <= 1.0) then
        reject "arrival.on_frac" (Printf.sprintf "%g" on_frac)
          "within (0, 1]");
  (* The telemetry sampler rides the preemption ticker. *)
  if c.telemetry && c.preempt_interval = None then
    reject "telemetry" "true" "combined with preempt_interval"

(* ------------------------------------------------------------------ *)
(* Arrival schedule: (arrival offset, class) rows, offset-ascending,
   deterministic in the seed.  Same xorshift as the runtime's victim
   selection; [u01] maps to (0, 1]. *)

let make_rng seed =
  let state = ref (if seed = 0 then 0x9e3779b9 else seed land max_int) in
  fun () ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land max_int;
    !state

let u01 rng = (float_of_int (rng () land 0xFFFFFF) +. 1.0) /. 16777217.0

(* Poisson arrivals at [rate]: exponential gaps.  Bursty arrivals reuse
   the same stream at rate/on_frac and then stretch time so gaps fall
   only inside the on-window of each period (off-window time is skipped
   over), keeping the mean offered rate at [rate]. *)
let schedule c =
  validate c;
  let rng = make_rng c.seed in
  let rows = ref [] in
  let n = ref 0 in
  (match c.arrival with
  | Poisson ->
      let t = ref 0.0 in
      let gap () = -.log (u01 rng) /. c.rate in
      t := !t +. gap ();
      while !t < c.duration do
        incr n;
        rows := (!t, if u01 rng < c.long_frac then Long else Short) :: !rows;
        t := !t +. gap ()
      done
  | Bursty { period; on_frac } ->
      let on_s = period *. on_frac in
      let burst_rate = c.rate /. on_frac in
      (* [tau] is time accumulated inside on-windows only. *)
      let tau = ref 0.0 in
      let gap () = -.log (u01 rng) /. burst_rate in
      let to_wall tau =
        let k = Float.of_int (int_of_float (tau /. on_s)) in
        (k *. period) +. (tau -. (k *. on_s))
      in
      tau := !tau +. gap ();
      while to_wall !tau < c.duration do
        incr n;
        rows :=
          (to_wall !tau, if u01 rng < c.long_frac then Long else Short)
          :: !rows;
        tau := !tau +. gap ()
      done);
  Array.of_list (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Reports. *)

type class_report = {
  cr_class : cls;
  cr_offered : int;
  cr_completed : int;
  cr_mean : float;  (* seconds; nan when empty *)
  cr_p50 : float;
  cr_p99 : float;
  cr_p999 : float;
  cr_hist : Hist.t;
}

type report = {
  r_config : config;
  r_offered : int;
  r_completed : int;
  r_elapsed : float;  (* injection start -> last completion awaited *)
  r_short : class_report;
  r_long : class_report;
  r_preemptions : int;
  r_quantum_lo : float;  (* min/max worker quantum at drain time; *)
  r_quantum_hi : float;  (* both = preempt_interval on a fixed pool *)
  r_subpools : Fiber.subpool_stats list;
  r_flight : Preempt_core.Recorder.event array;  (* empty unless recorder *)
}

let quantile_or_nan h p = if Hist.count h = 0 then Float.nan else Hist.quantile h p

let class_report ~cls ~offered lat =
  let h = Hist.create () in
  let completed = ref 0 in
  Array.iter
    (fun v ->
      if not (Float.is_nan v) then begin
        incr completed;
        Hist.add h v
      end)
    lat;
  {
    cr_class = cls;
    cr_offered = offered;
    cr_completed = !completed;
    cr_mean = (if !completed = 0 then Float.nan else Hist.mean h);
    cr_p50 = quantile_or_nan h 50.0;
    cr_p99 = quantile_or_nan h 99.0;
    cr_p999 = quantile_or_nan h 99.9;
    cr_hist = h;
  }

(* ------------------------------------------------------------------ *)
(* The run itself. *)

let cls_id = function Short -> 0 | Long -> 1

let run ?dump ?on_pool c =
  let sched = schedule c in
  let n = Array.length sched in
  let pool =
    Fiber.make
      (Fiber.Config.make ~domains:c.domains ?preempt_interval:c.preempt_interval
         ~adaptive:c.adaptive ?quantum_min:c.quantum_min
         ?quantum_max:c.quantum_max ~recorder:c.recorder
         ~telemetry:c.telemetry ())
  in
  let stop_live = match on_pool with Some f -> f pool | None -> fun () -> () in
  (* Per-request span tracing rides the flight recorder; [traced] is
     captured once so an untraced run pays nothing per request. *)
  let traced = Preempt_core.Recorder.enabled (Fiber.recorder pool) in
  let module R = Preempt_core.Recorder in
  (* Per-request sojourn, written by the request fiber into its own
     slot (disjoint writes, no shared histogram on the hot path). *)
  let lat = Array.make (Stdlib.max 1 n) Float.nan in
  let promises = Array.make (Stdlib.max 1 n) None in
  let t0 = ref 0.0 in
  Fiber.run pool (fun () ->
      t0 := wall ();
      for i = 0 to n - 1 do
        let offset, cls = sched.(i) in
        let due = !t0 +. offset in
        (* Open loop: spin to the scheduled instant; never wait for
           completions.  No [Fiber.check] here — the injector must not
           be descheduled in favor of a request, or the load would
           throttle itself closed-loop under overload. *)
        while wall () < due do
          ()
        done;
        let service =
          match cls with Short -> c.short_service | Long -> c.long_service
        in
        let ch = cls_id cls in
        (* Span head: the request id is the schedule index, allocated
           here at injection and carried into the fiber by capture.
           Arrival is stamped at the *scheduled* instant, so injector
           lateness shows up as an arrival -> enqueue gap. *)
        if traced then begin
          Fiber.emit_flight ~at:due R.ev_req_arrival i ch;
          Fiber.emit_flight R.ev_req_enqueue i 0
        end;
        promises.(i) <-
          Some
            (Fiber.submit pool (fun () ->
                 if traced then Fiber.emit_flight R.ev_req_dispatch i 0;
                 let deadline = wall () +. service in
                 while wall () < deadline do
                   if traced && Fiber.preempt_pending () then begin
                     (* Bracket the yield we are about to take so the
                        span decomposition can attribute the gap to
                        preemption overhead.  Benignly racy: a flag
                        raised between the probe and [check] is taken
                        unbracketed and lands in service time. *)
                     Fiber.emit_flight R.ev_req_preempt i 0;
                     Fiber.check ();
                     Fiber.emit_flight R.ev_req_resume i 0
                   end
                   else Fiber.check ()
                 done;
                 (* One clock read feeds the latency sample, the span
                    completion timestamp and its sojourn payload, so
                    the decomposition reproduces the measured sojourn
                    exactly. *)
                 let tdone = wall () in
                 let sojourn = tdone -. due in
                 lat.(i) <- sojourn;
                 if traced then
                   Fiber.emit_flight ~at:tdone R.ev_req_done i
                     (int_of_float (sojourn *. 1e9));
                 Fiber.telemetry_observe ~channel:ch sojourn))
      done;
      Array.iter (function Some p -> Fiber.await p | None -> ()) promises);
  let elapsed = wall () -. !t0 in
  let preemptions = Fiber.preemptions pool in
  let subpools = Fiber.stats pool in
  let quanta =
    List.concat_map (fun st -> List.map snd st.Fiber.st_quanta) subpools
  in
  let flight =
    let r = Fiber.recorder pool in
    if Preempt_core.Recorder.enabled r then begin
      (match dump with
      | Some path -> Preempt_core.Recorder.save r ~path
      | None -> ());
      Preempt_core.Recorder.events r
    end
    else [||]
  in
  stop_live ();
  Fiber.shutdown pool;
  let split cls0 =
    let lat' = Array.make (Stdlib.max 1 n) Float.nan in
    let offered = ref 0 in
    Array.iteri
      (fun i (_, cls) ->
        if cls = cls0 then begin
          incr offered;
          lat'.(i) <- lat.(i)
        end)
      sched;
    class_report ~cls:cls0 ~offered:!offered lat'
  in
  let short = split Short in
  let long = split Long in
  {
    r_config = c;
    r_offered = n;
    r_completed = short.cr_completed + long.cr_completed;
    r_elapsed = elapsed;
    r_short = short;
    r_long = long;
    r_preemptions = preemptions;
    r_quantum_lo =
      List.fold_left Float.min Float.infinity
        (if quanta = [] then [ 0.0 ] else quanta);
    r_quantum_hi =
      List.fold_left Float.max Float.neg_infinity
        (if quanta = [] then [ 0.0 ] else quanta);
    r_subpools = subpools;
    r_flight = flight;
  }

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let cls_name = function Short -> "short" | Long -> "long"

let us v = v *. 1e6

let print_text r =
  let c = r.r_config in
  Printf.printf
    "serve: %d request(s) offered over %.2fs (%.0f/s %s, %.0f%% long), %d \
     completed in %.2fs\n"
    r.r_offered c.duration c.rate
    (match c.arrival with
    | Poisson -> "poisson"
    | Bursty { period; on_frac } ->
        Printf.sprintf "bursty %.0f%% of %.0fms" (on_frac *. 100.0)
          (period *. 1e3))
    (c.long_frac *. 100.0) r.r_completed r.r_elapsed;
  Printf.printf "pool: %d domains (worker 0 injects), preemption %s%s\n"
    c.domains
    (match c.preempt_interval with
    | None -> "off"
    | Some dt -> Printf.sprintf "%.0f us" (us dt))
    (if c.adaptive then
       Printf.sprintf " adaptive (quantum now %.0f..%.0f us), %d preemptions"
         (us r.r_quantum_lo) (us r.r_quantum_hi) r.r_preemptions
     else Printf.sprintf " fixed, %d preemptions" r.r_preemptions);
  let line cr =
    Printf.printf
      "  %-5s %7d/%d done  mean %9.1f us  p50 %9.1f us  p99 %9.1f us  p99.9 \
       %9.1f us\n"
      (cls_name cr.cr_class) cr.cr_completed cr.cr_offered (us cr.cr_mean)
      (us cr.cr_p50) (us cr.cr_p99) (us cr.cr_p999)
  in
  line r.r_short;
  line r.r_long;
  (* Cross-class aggregate: one bucket-wise merge instead of
     re-bucketing the pooled samples. *)
  let all = Hist.merge r.r_short.cr_hist r.r_long.cr_hist in
  if Hist.count all > 0 then
    Printf.printf
      "  %-5s %7d/%d done  mean %9.1f us  p50 %9.1f us  p99 %9.1f us  p99.9 \
       %9.1f us\n"
      "all" (Hist.count all) r.r_offered (us (Hist.mean all))
      (us (quantile_or_nan all 50.0))
      (us (quantile_or_nan all 99.0))
      (us (quantile_or_nan all 99.9))

let jf v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_json r =
  let c = r.r_config in
  let cls_json cr =
    Printf.sprintf
      "{\"offered\":%d,\"completed\":%d,\"mean_s\":%s,\"p50_s\":%s,\"p99_s\":%s,\"p999_s\":%s}"
      cr.cr_offered cr.cr_completed (jf cr.cr_mean) (jf cr.cr_p50)
      (jf cr.cr_p99) (jf cr.cr_p999)
  in
  let all = Hist.merge r.r_short.cr_hist r.r_long.cr_hist in
  let all_json =
    Printf.sprintf
      "{\"completed\":%d,\"mean_s\":%s,\"p50_s\":%s,\"p99_s\":%s,\"p999_s\":%s}"
      (Hist.count all)
      (jf (if Hist.count all = 0 then Float.nan else Hist.mean all))
      (jf (quantile_or_nan all 50.0))
      (jf (quantile_or_nan all 99.0))
      (jf (quantile_or_nan all 99.9))
  in
  Printf.sprintf
    "{\"rate\":%s,\"duration\":%s,\"arrival\":%S,\"long_frac\":%s,\"domains\":%d,\"adaptive\":%b,\"preempt_interval_s\":%s,\"offered\":%d,\"completed\":%d,\"elapsed_s\":%s,\"preemptions\":%d,\"quantum_lo_s\":%s,\"quantum_hi_s\":%s,\"short\":%s,\"long\":%s,\"overall\":%s}\n"
    (jf c.rate) (jf c.duration)
    (match c.arrival with Poisson -> "poisson" | Bursty _ -> "bursty")
    (jf c.long_frac) c.domains c.adaptive
    (match c.preempt_interval with None -> "null" | Some dt -> jf dt)
    r.r_offered r.r_completed (jf r.r_elapsed) r.r_preemptions
    (jf r.r_quantum_lo) (jf r.r_quantum_hi) (cls_json r.r_short)
    (cls_json r.r_long) all_json
