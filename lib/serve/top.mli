(** The live view behind [repro top]: a display thread samples a
    pool's {!Preempt_core.Telemetry} rings and {!Fiber.stats} at a
    fixed period (1 Hz default) and renders per-sub-pool worker tables
    with queue-depth sparklines, steal split, park/wake counts, the
    adaptive-quanta range, and rolling p50/p99 per service class —
    either as an ANSI terminal redraw or as one JSON object per tick
    (JSONL, for machines).

    Frame construction ({!frame}) and rendering ({!frame_to_string},
    {!frame_to_json}, {!sparkline}) are pure given the sampled values,
    so they are unit-tested without a live pool; only {!attach}
    touches threads.  Attach via [Serve.run ~on_pool:(Top.attach
    ~mode:...)] or [repro serve --top]. *)

type mode = Text | Jsonl

type row = {
  t_worker : int;
  t_subpool : string;
  t_depth : int;  (** latest sampled run-queue depth *)
  t_steals_in : int;  (** cumulative *)
  t_steals_out : int;  (** cumulative, sub-pool level *)
  t_parks : int;  (** cumulative *)
  t_wakes : int;  (** cumulative *)
  t_quantum : float;  (** seconds *)
  t_util : float;  (** 0..1, last sample period *)
  t_spark : int array;  (** recent queue-depth series, oldest first *)
}

type frame = {
  f_ts : float;  (** newest sample timestamp (pool clock) *)
  f_rows : row list;  (** worker order *)
  f_subpools : Fiber.subpool_stats list;
  f_quantum_lo : float;
  f_quantum_hi : float;
  f_quantiles : (string * int * float * float) list;
      (** per telemetry channel: class name, window sample count,
          rolling p50, rolling p99 (NaN when the window is empty) *)
}

val frame : Fiber.pool -> frame
(** Snapshot the pool's telemetry and stats into one frame.  Reads
    racy rings (a point mid-overwrite may tear); fine at display
    rates. *)

val sparkline : int array -> string
(** Depths as block glyphs, scaled to the window's own maximum; an
    all-zero window renders as blanks. *)

val frame_to_string : frame -> string
(** Multi-line terminal table (no ANSI escapes — {!attach} adds the
    clear-screen prefix). *)

val frame_to_json : frame -> string
(** One-line JSON object: [ts], quanta range, per-class rolling
    quantiles, per-sub-pool counters, per-worker rows. *)

val attach : ?period:float -> ?out:out_channel -> mode:mode -> Fiber.pool -> (unit -> unit)
(** Start the display thread redrawing every [period] seconds (default
    1.0) and return the detach closure: it stops the thread, joins it,
    and emits one final frame (so short runs still show their end
    state).  Calling the closure twice is harmless.  Made to be passed
    as [Serve.run]'s [?on_pool]. *)
