(* The live view behind [repro top]: a display thread samples the
   pool's telemetry and stats at a configurable period (1 Hz default)
   and renders either an ANSI terminal table or one JSON object per
   tick (JSONL, for machines).  Frame construction is pure given the
   snapshot values, so the rendering is unit-testable without a live
   pool; only [attach] touches threads. *)

module Hist = Preempt_core.Metrics.Hist
module Tel = Preempt_core.Telemetry

type mode = Text | Jsonl

(* One worker row: the latest telemetry point plus rates derived by
   differencing against the point [spark_window] samples back. *)
type row = {
  t_worker : int;
  t_subpool : string;
  t_depth : int;
  t_steals_in : int;  (* cumulative *)
  t_steals_out : int;  (* cumulative, sub-pool level *)
  t_parks : int;  (* cumulative *)
  t_wakes : int;  (* cumulative *)
  t_quantum : float;  (* seconds *)
  t_util : float;  (* 0..1 *)
  t_spark : int array;  (* recent queue-depth series, oldest first *)
}

type frame = {
  f_ts : float;  (* seconds since pool start (telemetry clock) *)
  f_rows : row list;  (* worker order *)
  f_subpools : Fiber.subpool_stats list;
  f_quantum_lo : float;
  f_quantum_hi : float;
  f_quantiles : (string * int * float * float) list;
      (* (class name, window samples, p50, p99) per telemetry channel *)
}

let spark_window = 32

let class_names = [| "short"; "long" |]

let channel_name ch =
  if ch >= 0 && ch < Array.length class_names then class_names.(ch)
  else Printf.sprintf "class%d" ch

(* ------------------------------------------------------------------ *)
(* Sampling a frame from a live pool. *)

let frame pool =
  let tel = Fiber.telemetry pool in
  let stats = Fiber.stats pool in
  let sub_of = Hashtbl.create 8 in
  List.iter
    (fun st ->
      List.iter
        (fun (wid, _) -> Hashtbl.replace sub_of wid st.Fiber.st_name)
        st.Fiber.st_quanta)
    stats;
  let n = Tel.n_workers tel in
  let ts = ref 0.0 in
  let rows =
    List.init n (fun w ->
        let series = Tel.series tel ~worker:w in
        let m = Array.length series in
        let last =
          if m = 0 then None
          else begin
            let p = series.(m - 1) in
            if p.Tel.p_ts > !ts then ts := p.Tel.p_ts;
            Some p
          end
        in
        let tail = Stdlib.min m spark_window in
        let spark =
          Array.init tail (fun k -> series.(m - tail + k).Tel.p_depth)
        in
        {
          t_worker = w;
          t_subpool =
            (match Hashtbl.find_opt sub_of w with Some s -> s | None -> "?");
          t_depth = (match last with Some p -> p.Tel.p_depth | None -> 0);
          t_steals_in = (match last with Some p -> p.Tel.p_steals_in | None -> 0);
          t_steals_out =
            (match last with Some p -> p.Tel.p_steals_out | None -> 0);
          t_parks = (match last with Some p -> p.Tel.p_parks | None -> 0);
          t_wakes = (match last with Some p -> p.Tel.p_wakes | None -> 0);
          t_quantum = (match last with Some p -> p.Tel.p_quantum | None -> 0.0);
          t_util = (match last with Some p -> p.Tel.p_util | None -> 0.0);
          t_spark = spark;
        })
  in
  let quanta =
    List.concat_map (fun st -> List.map snd st.Fiber.st_quanta) stats
  in
  let quantiles =
    List.init (Tel.channels tel) (fun ch ->
        let sk = Tel.channel_sketch tel ~channel:ch in
        let nn = Hist.count sk in
        ( channel_name ch,
          nn,
          (if nn = 0 then Float.nan else Hist.quantile sk 50.0),
          if nn = 0 then Float.nan else Hist.quantile sk 99.0 ))
  in
  {
    f_ts = !ts;
    f_rows = rows;
    f_subpools = stats;
    f_quantum_lo =
      List.fold_left Float.min Float.infinity
        (if quanta = [] then [ 0.0 ] else quanta);
    f_quantum_hi =
      List.fold_left Float.max Float.neg_infinity
        (if quanta = [] then [ 0.0 ] else quanta);
    f_quantiles = quantiles;
  }

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let spark_glyphs = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

(* Depths scale to the window's own maximum (a relative load shape,
   not an absolute scale); an all-zero window renders as blanks. *)
let sparkline depths =
  let hi = Array.fold_left Stdlib.max 0 depths in
  let buf = Buffer.create (Array.length depths * 3) in
  Array.iter
    (fun d ->
      let d = Stdlib.max 0 d in
      let i =
        if hi = 0 || d = 0 then 0
        else 1 + (d * (Array.length spark_glyphs - 2) / hi)
      in
      Buffer.add_string buf spark_glyphs.(Stdlib.min i (Array.length spark_glyphs - 1)))
    depths;
  Buffer.contents buf

let us v = v *. 1e6

let frame_to_string f =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "repro top — t=%.2fs  quanta %.0f..%.0f us\n" f.f_ts
       (us f.f_quantum_lo) (us f.f_quantum_hi));
  List.iter
    (fun (name, n, p50, p99) ->
      Buffer.add_string buf
        (if n = 0 then Printf.sprintf "  %-6s (no samples in window)\n" name
         else
           Printf.sprintf "  %-6s window n=%-6d p50 %9.1f us  p99 %9.1f us\n"
             name n (us p50) (us p99)))
    f.f_quantiles;
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf
           "sub-pool %-10s [%s] workers=%d pending=%d spawned=%d steals \
            local/in/out %d/%d/%d batched=%d recycled=%d/%d leapfrog=%d\n"
           st.Fiber.st_name st.Fiber.st_sched st.Fiber.st_workers
           st.Fiber.st_pending st.Fiber.st_spawned st.Fiber.st_local_steals
           st.Fiber.st_overflow_in st.Fiber.st_overflow_out
           st.Fiber.st_batch_stolen st.Fiber.st_recycled
           st.Fiber.st_recycle_miss st.Fiber.st_leapfrog))
    f.f_subpools;
  Buffer.add_string buf
    "  wkr sub-pool   depth util%  parks wakes st-in st-out quantum  queue\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %3d %-10s %5d %4.0f%% %6d %5d %5d %6d %6.0fus %s\n" r.t_worker
           r.t_subpool r.t_depth (r.t_util *. 100.0) r.t_parks r.t_wakes
           r.t_steals_in r.t_steals_out (us r.t_quantum)
           (sparkline r.t_spark)))
    f.f_rows;
  Buffer.contents buf

let jf v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let frame_to_json f =
  let rows =
    String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf
             "{\"worker\":%d,\"subpool\":%S,\"depth\":%d,\"util\":%s,\"parks\":%d,\"wakes\":%d,\"steals_in\":%d,\"steals_out\":%d,\"quantum_s\":%s}"
             r.t_worker r.t_subpool r.t_depth (jf r.t_util) r.t_parks r.t_wakes
             r.t_steals_in r.t_steals_out (jf r.t_quantum))
         f.f_rows)
  in
  let pools =
    String.concat ","
      (List.map
         (fun st ->
           Printf.sprintf
             "{\"name\":%S,\"sched\":%S,\"workers\":%d,\"pending\":%d,\"spawned\":%d,\"local_steals\":%d,\"overflow_in\":%d,\"overflow_out\":%d,\"batch_stolen\":%d,\"recycled\":%d,\"recycle_miss\":%d,\"leapfrog\":%d}"
             st.Fiber.st_name st.Fiber.st_sched st.Fiber.st_workers
             st.Fiber.st_pending st.Fiber.st_spawned st.Fiber.st_local_steals
             st.Fiber.st_overflow_in st.Fiber.st_overflow_out
             st.Fiber.st_batch_stolen st.Fiber.st_recycled
             st.Fiber.st_recycle_miss st.Fiber.st_leapfrog)
         f.f_subpools)
  in
  let qs =
    String.concat ","
      (List.map
         (fun (name, n, p50, p99) ->
           Printf.sprintf "{\"class\":%S,\"n\":%d,\"p50_s\":%s,\"p99_s\":%s}"
             name n (jf p50) (jf p99))
         f.f_quantiles)
  in
  Printf.sprintf
    "{\"ts\":%s,\"quantum_lo_s\":%s,\"quantum_hi_s\":%s,\"classes\":[%s],\"subpools\":[%s],\"workers\":[%s]}"
    (jf f.f_ts) (jf f.f_quantum_lo) (jf f.f_quantum_hi) qs pools rows

(* ------------------------------------------------------------------ *)
(* The live thread. *)

let clear_screen = "\027[2J\027[H"

let attach ?(period = 1.0) ?(out = stdout) ~mode pool =
  let stop = Atomic.make false in
  let tick () =
    let f = frame pool in
    (match mode with
    | Text ->
        output_string out clear_screen;
        output_string out (frame_to_string f)
    | Jsonl ->
        output_string out (frame_to_json f);
        output_char out '\n');
    flush out
  in
  let t =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          tick ();
          (* Sleep in short slices so detach is prompt. *)
          let slices = Stdlib.max 1 (int_of_float (period /. 0.05)) in
          let rec nap k =
            if k > 0 && not (Atomic.get stop) then begin
              Thread.delay (period /. float_of_int slices);
              nap (k - 1)
            end
          in
          nap slices
        done)
      ()
  in
  fun () ->
    if not (Atomic.get stop) then begin
      Atomic.set stop true;
      Thread.join t;
      (* One final frame so short runs still show their end state. *)
      tick ()
    end
