(** Open-loop serving workload on the real fiber runtime: a seeded
    arrival process (Poisson or on/off bursty) injects short-lived
    request fibers at a configured offered rate — independent of how
    fast the pool completes them, so overload builds a real queue —
    and per-request sojourn times are recorded into
    {!Preempt_core.Metrics.Hist} histograms per service class,
    reported as p50/p99/p99.9.

    The injector is the main fiber on worker 0 (effectively the
    load-generator core: [domains - 1] workers serve); every request
    goes through [Fiber.submit]'s external path.  Sojourn is measured
    from the request's {e scheduled} arrival instant, so injector
    lateness under overload counts as queueing delay.

    See [docs/serving.md] for the workload model and how the adaptive
    preemption quantum ({!Quantum}) changes the tail under overload. *)

(** The adaptive-quantum controller (re-export of {!Fiber.Quantum}):
    [Quantum.next : stats -> float], the pure function the adaptive
    ticker runs per worker. *)
module Quantum = Fiber.Quantum

type arrival =
  | Poisson  (** exponential inter-arrival gaps at [rate] *)
  | Bursty of { period : float; on_frac : float }
      (** all traffic inside the first [on_frac] of every [period]
          seconds, at [rate /. on_frac]; mean offered rate stays
          [rate] *)

type cls = Short | Long

type config = {
  rate : float;  (** offered requests/second, both classes together *)
  duration : float;  (** injection horizon, seconds *)
  long_frac : float;  (** fraction of requests in the [Long] class *)
  short_service : float;  (** spin-work seconds per [Short] request *)
  long_service : float;  (** spin-work seconds per [Long] request *)
  arrival : arrival;
  seed : int;
  domains : int;  (** pool size; worker 0 is the injector *)
  preempt_interval : float option;
  adaptive : bool;  (** per-worker adaptive quanta ({!Quantum}) *)
  quantum_min : float option;
  quantum_max : float option;
  recorder : bool;  (** arm the flight recorder for the run *)
  telemetry : bool;
      (** arm live telemetry ({!Preempt_core.Telemetry}): per-worker
          time-series sampling plus per-class rolling sojourn windows;
          requires [preempt_interval] *)
}

(** 20k req/s Poisson for 1 s, 5% long (2 ms) / 95% short (20 us),
    2 ms fixed preemption, recorder off. *)
val default : config

(** @raise Invalid_argument (["Serve: <field> = <value> (must be ...)"])
    on a nonsensical config. *)
val validate : config -> unit

(** The run's arrival schedule as [(offset, class)] rows,
    offset-ascending — a pure function of the config (seeded), so equal
    configs give byte-identical schedules.  Validates first. *)
val schedule : config -> (float * cls) array

type class_report = {
  cr_class : cls;
  cr_offered : int;
  cr_completed : int;
  cr_mean : float;  (** seconds; [nan] when no sample completed *)
  cr_p50 : float;
  cr_p99 : float;
  cr_p999 : float;
  cr_hist : Preempt_core.Metrics.Hist.t;  (** full sojourn histogram *)
}

type report = {
  r_config : config;
  r_offered : int;
  r_completed : int;
  r_elapsed : float;  (** injection start -> all completions awaited *)
  r_short : class_report;
  r_long : class_report;
  r_preemptions : int;
  r_quantum_lo : float;  (** min worker quantum at drain time *)
  r_quantum_hi : float;  (** max worker quantum at drain time *)
  r_subpools : Fiber.subpool_stats list;
  r_flight : Preempt_core.Recorder.event array;
      (** flight events when [recorder]: steals, quantum changes, and
          per-request spans ([Recorder.ev_req_arrival] ...
          [ev_req_done]) — every request id is its schedule index, and
          its sojourn decomposes into queueing / service / preemption
          overhead from the span timestamps alone *)
}

(** Build the pool, inject the schedule open-loop, await every
    response, tear the pool down, and report.  Wall-clock heavy by
    design — this is the load generator, not a unit test.  [?dump]
    saves the flight record ({!Preempt_core.Recorder.save}) before
    teardown when the recorder is armed, for [repro observe --load]
    attribution.  [?on_pool] is called with the freshly built pool
    before injection starts (the live-view attach point, see
    {!Top.attach}); the closure it returns is called after the run
    drains, before pool teardown. *)
val run : ?dump:string -> ?on_pool:(Fiber.pool -> unit -> unit) -> config -> report

val cls_name : cls -> string

(** Stable channel/class id: [Short] = 0, [Long] = 1 — the telemetry
    channel and the [b] payload of [Recorder.ev_req_arrival]. *)
val cls_id : cls -> int

val print_text : report -> unit

(** One-line JSON object (p50/p99/p99.9 per class, quantum range,
    preemption count). *)
val to_json : report -> string
