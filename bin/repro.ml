(* Command-line front end: regenerate any single experiment.

     repro fig4|fig6|table1|fig7|fig8|fig9|all [--full]
                 [--metrics] [--chrome-trace FILE]
     repro env

   --metrics prints the runtime's observability counters and latency
   histograms (p50/p99 signal-to-switch etc.) for the instrumented run;
   --chrome-trace FILE writes a Chrome trace_events JSON of the same run,
   loadable in chrome://tracing or ui.perfetto.dev.  Both are honored by
   the experiments that run the M:N runtime through the observability
   hooks (fig4, table1); see docs/observability.md. *)

open Cmdliner

let fast_t =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run the paper-scale sweep (slower).")
  in
  Term.(const not $ full)

let obs_t =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Record and print runtime metrics (per-worker counters, latency \
             histograms with p50/p99) for the instrumented run.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_events JSON file of the instrumented run to \
             $(docv); load it in chrome://tracing or ui.perfetto.dev.")
  in
  Term.(const (fun m c -> (m, c)) $ metrics $ chrome)

let run_exp name f =
  let doc = Printf.sprintf "Regenerate %s of the paper." name in
  let term =
    Term.(
      const (fun fast (m, c) ->
          Experiments.Exputil.Obs.metrics := m;
          Experiments.Exputil.Obs.chrome_trace := c;
          f ~fast ();
          if m || c <> None then Experiments.Exputil.Obs.report ())
      $ fast_t $ obs_t)
  in
  Cmd.v (Cmd.info (String.lowercase_ascii (String.map (function ' ' -> '_' | c -> c) name)) ~doc) term

let fig4 = run_exp "fig4" (fun ~fast () -> ignore (Experiments.Fig4_interrupt.run ~fast ()))

let fig6 = run_exp "fig6" (fun ~fast () -> ignore (Experiments.Fig6_overhead.run ~fast ()))

let table1 =
  run_exp "table1" (fun ~fast () -> ignore (Experiments.Table1_preempt_cost.run ~fast ()))

let fig7 = run_exp "fig7" (fun ~fast () -> ignore (Experiments.Fig7_cholesky.run ~fast ()))

let fig8 = run_exp "fig8" (fun ~fast () -> ignore (Experiments.Fig8_packing.run ~fast ()))

let fig9 = run_exp "fig9" (fun ~fast () -> ignore (Experiments.Fig9_insitu.run ~fast ()))

let sec351 =
  run_exp "sec351" (fun ~fast () -> ignore (Experiments.Sec351_syscalls.run ~fast ()))

let all =
  run_exp "all" (fun ~fast () ->
      ignore (Experiments.Fig4_interrupt.run ~fast ());
      ignore (Experiments.Fig6_overhead.run ~fast ());
      ignore (Experiments.Table1_preempt_cost.run ~fast ());
      ignore (Experiments.Fig7_cholesky.run ~fast ());
      ignore (Experiments.Fig8_packing.run ~fast ());
      ignore (Experiments.Fig9_insitu.run ~fast ());
      ignore (Experiments.Sec351_syscalls.run ~fast ()))

let env =
  let doc = "Print the simulated machine configurations (paper Table 2)." in
  Cmd.v (Cmd.info "env" ~doc)
    Term.(
      const (fun () ->
          Format.printf "%a@." Oskern.Machine.pp Oskern.Machine.skylake;
          Format.printf "%a@." Oskern.Machine.pp Oskern.Machine.knl)
      $ const ())

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Reproduce the experiments of 'Lightweight Preemptive User-Level Threads' \
         (PPoPP'21) on a simulated substrate."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ fig4; fig6; table1; fig7; fig8; fig9; sec351; all; env ]))
