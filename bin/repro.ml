(* Command-line front end: regenerate any single experiment.

     repro fig4|fig6|table1|fig7|fig8|fig9|all [--full]
                 [--metrics] [--chrome-trace FILE]
     repro env

   --metrics prints the runtime's observability counters and latency
   histograms (p50/p99 signal-to-switch etc.) for the instrumented run;
   --chrome-trace FILE writes a Chrome trace_events JSON of the same run,
   loadable in chrome://tracing or ui.perfetto.dev.  Both are honored by
   the experiments that run the M:N runtime through the observability
   hooks (fig4, table1); see docs/observability.md. *)

open Cmdliner

let fast_t =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run the paper-scale sweep (slower).")
  in
  Term.(const not $ full)

let obs_t =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Record and print runtime metrics (per-worker counters, latency \
             histograms with p50/p99) for the instrumented run.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_events JSON file of the instrumented run to \
             $(docv); load it in chrome://tracing or ui.perfetto.dev.")
  in
  Term.(const (fun m c -> (m, c)) $ metrics $ chrome)

let run_exp name f =
  let doc = Printf.sprintf "Regenerate %s of the paper." name in
  let term =
    Term.(
      const (fun fast (m, c) ->
          Experiments.Exputil.Obs.metrics := m;
          Experiments.Exputil.Obs.chrome_trace := c;
          f ~fast ();
          if m || c <> None then Experiments.Exputil.Obs.report ())
      $ fast_t $ obs_t)
  in
  Cmd.v (Cmd.info (String.lowercase_ascii (String.map (function ' ' -> '_' | c -> c) name)) ~doc) term

let fig4 = run_exp "fig4" (fun ~fast () -> ignore (Experiments.Fig4_interrupt.run ~fast ()))

let fig6 = run_exp "fig6" (fun ~fast () -> ignore (Experiments.Fig6_overhead.run ~fast ()))

let table1 =
  run_exp "table1" (fun ~fast () -> ignore (Experiments.Table1_preempt_cost.run ~fast ()))

let fig7 = run_exp "fig7" (fun ~fast () -> ignore (Experiments.Fig7_cholesky.run ~fast ()))

let fig8 = run_exp "fig8" (fun ~fast () -> ignore (Experiments.Fig8_packing.run ~fast ()))

let fig9 = run_exp "fig9" (fun ~fast () -> ignore (Experiments.Fig9_insitu.run ~fast ()))

let sec351 =
  run_exp "sec351" (fun ~fast () -> ignore (Experiments.Sec351_syscalls.run ~fast ()))

let all =
  run_exp "all" (fun ~fast () ->
      ignore (Experiments.Fig4_interrupt.run ~fast ());
      ignore (Experiments.Fig6_overhead.run ~fast ());
      ignore (Experiments.Table1_preempt_cost.run ~fast ());
      ignore (Experiments.Fig7_cholesky.run ~fast ());
      ignore (Experiments.Fig8_packing.run ~fast ());
      ignore (Experiments.Fig9_insitu.run ~fast ());
      ignore (Experiments.Sec351_syscalls.run ~fast ()))

(* ------------------------------------------------------------------ *)
(* repro observe — flight-recorder report (docs/observability.md)      *)
(* ------------------------------------------------------------------ *)

let observe_main json chrome dump load smoke =
  let fail msg =
    prerr_endline ("repro observe: " ^ msg);
    exit 1
  in
  let report, spawned =
    match load with
    | Some path -> (
        match Preempt_core.Recorder.load ~path with
        | Ok d -> (Experiments.Observe.of_dump d, [])
        | Error e -> fail (Printf.sprintf "cannot load %s: %s" path e))
    | None ->
        let rt, uids = Experiments.Observe.run_workload () in
        (match dump with
        | Some path ->
            Preempt_core.Runtime.save_flight rt ~path;
            Printf.eprintf "flight record written to %s\n%!" path
        | None -> ());
        (Experiments.Observe.of_runtime rt, uids)
  in
  (match chrome with
  | Some path ->
      Experiments.Chrome_trace.write ~path
        (Experiments.Chrome_trace.of_flight
           report.Experiments.Observe.r_events);
      Printf.eprintf "chrome trace written to %s\n%!" path
  | None -> ());
  if json then print_string (Experiments.Observe.to_json report)
  else Experiments.Observe.print_text report;
  if smoke then begin
    if load <> None then fail "--smoke needs a live run, not --load";
    match Experiments.Observe.smoke ~spawned report with
    | Ok () -> Printf.printf "obs-smoke: ok\n%!"
    | Error msg -> fail ("smoke check failed: " ^ msg)
  end

let observe =
  let doc =
    "Run a preemption-heavy demo workload with the flight recorder on and \
     report reconstructed ULT lifecycles, per-stage preemption-latency \
     attribution and detected anomalies; or render a saved binary dump."
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write the flight record as Chrome trace_events JSON to $(docv) \
             (one lifecycle lane per ULT plus a preemption-event lane).")
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"FILE"
          ~doc:"Save the run's binary flight record to $(docv).")
  in
  let load =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:
            "Skip the demo run; decode and report the binary flight record \
             in $(docv) (e.g. a dump left by a $(b,repro check) violation).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Assert the record is sound: non-empty lifecycle per spawned \
             ULT, attribution chains matching the sig_to_switch histogram \
             within one bucket, valid Chrome JSON.  Non-zero exit on \
             failure (the $(b,@obs-smoke) alias).")
  in
  Cmd.v (Cmd.info "observe" ~doc)
    Term.(const observe_main $ json $ chrome $ dump $ load $ smoke)

(* ------------------------------------------------------------------ *)
(* repro serve — open-loop serving workload (lib/serve)                *)
(* ------------------------------------------------------------------ *)

let serve_main rate duration mix arrival burst_period burst_on seed domains
    preempt fixed quantum_min quantum_max json chrome dump top top_json
    top_period =
  let fail msg =
    prerr_endline ("repro serve: " ^ msg);
    exit 1
  in
  let arrival =
    match arrival with
    | "poisson" -> Serve.Poisson
    | "bursty" ->
        Serve.Bursty { period = burst_period; on_frac = burst_on }
    | s -> fail (Printf.sprintf "unknown arrival %S (want poisson or bursty)" s)
  in
  let d = Serve.default in
  let cfg =
    {
      d with
      Serve.rate;
      duration;
      long_frac = mix;
      arrival;
      seed;
      domains = Option.value domains ~default:d.Serve.domains;
      preempt_interval =
        (match preempt with Some i -> Some i | None -> d.Serve.preempt_interval);
      adaptive = not fixed;
      quantum_min;
      quantum_max;
      recorder = chrome <> None || dump <> None;
      telemetry = top || top_json;
    }
  in
  (try Serve.validate cfg with Invalid_argument m -> fail m);
  (* The live view emits its final frame at drain time, before the
     post-run report prints, so the two don't interleave. *)
  let on_pool =
    if top || top_json then
      Some
        (fun pool ->
          Top.attach ~period:top_period
            ~mode:(if top_json then Top.Jsonl else Top.Text)
            pool)
    else None
  in
  let rep = Serve.run ?dump ?on_pool cfg in
  (match dump with
  | Some path -> Printf.eprintf "flight record written to %s\n%!" path
  | None -> ());
  (match chrome with
  | Some path ->
      Experiments.Chrome_trace.write ~path
        (Experiments.Chrome_trace.of_flight rep.Serve.r_flight);
      Printf.eprintf "chrome trace written to %s\n%!" path
  | None -> ());
  if json then print_string (Serve.to_json rep) else Serve.print_text rep

let serve =
  let doc =
    "Drive the fiber runtime with an open-loop serving workload (seeded \
     Poisson or bursty arrivals at a fixed offered rate, short/long request \
     mix) and report per-class sojourn p50/p99/p99.9; adaptive per-worker \
     preemption quanta by default ($(b,--fixed) pins the base interval).  \
     See docs/serving.md."
  in
  let rate =
    Arg.(
      value & opt float Serve.default.Serve.rate
      & info [ "rate" ] ~docv:"REQ_PER_S"
          ~doc:
            "Offered arrival rate in requests/second; pick one above the \
             pool's service capacity to study overload.")
  in
  let duration =
    Arg.(
      value & opt float Serve.default.Serve.duration
      & info [ "duration" ] ~docv:"S" ~doc:"Injection horizon in seconds.")
  in
  let mix =
    Arg.(
      value & opt float Serve.default.Serve.long_frac
      & info [ "mix" ] ~docv:"FRAC"
          ~doc:
            "Fraction of requests in the long service class (the rest are \
             short).")
  in
  let arrival =
    Arg.(
      value & opt string "poisson"
      & info [ "arrival" ] ~docv:"KIND"
          ~doc:"Arrival process: $(b,poisson) or $(b,bursty) (on/off).")
  in
  let burst_period =
    Arg.(
      value & opt float 0.1
      & info [ "burst-period" ] ~docv:"S"
          ~doc:"Bursty arrivals: on/off cycle length in seconds.")
  in
  let burst_on =
    Arg.(
      value & opt float 0.25
      & info [ "burst-on" ] ~docv:"FRAC"
          ~doc:
            "Bursty arrivals: fraction of each period carrying traffic (at \
             rate / $(docv)).")
  in
  let seed =
    Arg.(
      value & opt int Serve.default.Serve.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Arrival-schedule seed (same seed = same schedule).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Pool size incl. the injector worker (default: available cores).")
  in
  let preempt =
    Arg.(
      value
      & opt (some float) None
      & info [ "preempt" ] ~docv:"S"
          ~doc:"Base preemption interval in seconds (default 2 ms).")
  in
  let fixed =
    Arg.(
      value & flag
      & info [ "fixed" ]
          ~doc:
            "Keep the preemption quantum pinned at the base interval instead \
             of letting the $(b,Quantum) controller adapt it to queue depth.")
  in
  let quantum_min =
    Arg.(
      value
      & opt (some float) None
      & info [ "quantum-min" ] ~docv:"S"
          ~doc:"Adaptive floor in seconds (default: base / 8).")
  in
  let quantum_max =
    Arg.(
      value
      & opt (some float) None
      & info [ "quantum-max" ] ~docv:"S"
          ~doc:"Adaptive ceiling in seconds (default: the base interval).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder and write the run's events (steals, \
             quantum changes) as Chrome trace_events JSON to $(docv).")
  in
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder and save the run's binary flight record \
             to $(docv), for $(b,repro observe --load) attribution.")
  in
  let top =
    Arg.(
      value & flag
      & info [ "top" ]
          ~doc:
            "Arm live telemetry and redraw a $(b,repro top) terminal view \
             (per-sub-pool worker tables, queue-depth sparklines, rolling \
             per-class quantiles) while the workload runs.")
  in
  let top_json =
    Arg.(
      value & flag
      & info [ "top-json" ]
          ~doc:
            "Like $(b,--top) but emit one JSON object per tick (JSONL) \
             instead of redrawing the terminal.")
  in
  let top_period =
    Arg.(
      value & opt float 1.0
      & info [ "top-period" ] ~docv:"S"
          ~doc:"Live-view redraw period in seconds (default 1).")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve_main $ rate $ duration $ mix $ arrival $ burst_period
      $ burst_on $ seed $ domains $ preempt $ fixed $ quantum_min
      $ quantum_max $ json $ chrome $ dump $ top $ top_json $ top_period)

(* ------------------------------------------------------------------ *)
(* repro top — live telemetry view over a self-driven workload        *)
(* ------------------------------------------------------------------ *)

let top_main rate duration domains json period =
  let fail msg =
    prerr_endline ("repro top: " ^ msg);
    exit 1
  in
  let d = Serve.default in
  let cfg =
    {
      d with
      Serve.rate;
      duration;
      domains = Option.value domains ~default:d.Serve.domains;
      telemetry = true;
    }
  in
  (try Serve.validate cfg with Invalid_argument m -> fail m);
  let on_pool pool =
    Top.attach ~period ~mode:(if json then Top.Jsonl else Top.Text) pool
  in
  ignore (Serve.run ~on_pool cfg : Serve.report)

let top_cmd =
  let doc =
    "Live telemetry view: drive the default serving workload \
     ($(b,repro serve)) with per-worker time-series sampling armed and \
     redraw per-sub-pool worker tables, queue-depth sparklines, the \
     steal split, the adaptive-quanta range, and rolling per-class \
     p50/p99 once a second until the run drains.  $(b,--json) swaps the \
     terminal redraw for one JSON object per tick (JSONL).  The same \
     view attaches to any serving run via $(b,repro serve --top)."
  in
  let rate =
    Arg.(
      value & opt float Serve.default.Serve.rate
      & info [ "rate" ] ~docv:"REQ_PER_S"
          ~doc:"Offered arrival rate in requests/second.")
  in
  let duration =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"S"
          ~doc:"Injection horizon in seconds (default 5).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Pool size incl. the injector worker (default: available cores).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object per tick (JSONL).")
  in
  let period =
    Arg.(
      value & opt float 1.0
      & info [ "period" ] ~docv:"S"
          ~doc:"Redraw period in seconds (default 1).")
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const top_main $ rate $ duration $ domains $ json $ period)

(* ------------------------------------------------------------------ *)
(* repro check — schedule exploration / fault injection (lib/check)    *)
(* ------------------------------------------------------------------ *)

let parse_strategy s =
  match s with
  | "random" -> Ok Check.Random_walk
  | "dfs" -> Ok Check.Dfs
  | "dpor" -> Ok Check.Dpor
  | _ -> (
      match String.split_on_char ':' s with
      | [ "pct"; d ] -> (
          match int_of_string_opt d with
          | Some d when d >= 0 -> Ok (Check.Pct d)
          | _ -> Error (Printf.sprintf "bad PCT depth in %S" s))
      | _ ->
          Error
            (Printf.sprintf
               "unknown strategy %S (want random, pct:D, dfs or dpor)" s))

let verdict_line ?(must_exhaust = false) name expect (r : Check.report) =
  let verdict, detail =
    match r.Check.result with
    | `Ok ->
        ( Check.Scenarios.Pass,
          Printf.sprintf "no violation in %d schedule(s)%s%s" r.Check.schedules
            (if r.Check.exhausted then " (space exhausted)" else "")
            (if r.Check.pruned > 0 then
               Printf.sprintf " (%d pruned)" r.Check.pruned
             else "") )
    | `Violation cx ->
        ( Check.Scenarios.Fail,
          Printf.sprintf "caught at schedule #%d: %s" cx.Check.cx_schedule
            cx.Check.cx_message )
  in
  let ok =
    verdict = expect
    && ((not must_exhaust) || verdict = Check.Scenarios.Fail || r.Check.exhausted)
  in
  Printf.printf "%-12s %s  %s\n%!" name
    (if ok then "[as expected]" else "[UNEXPECTED]")
    detail;
  ok

let dump_cx_trace trace_file (cx : Check.counterexample) =
  match trace_file with
  | Some path when cx.Check.cx_trace <> "" ->
      let oc = open_out path in
      output_string oc cx.Check.cx_trace;
      close_out oc;
      Printf.printf "chrome trace of the shrunk schedule written to %s\n%!" path
  | _ -> ()

(* A reproduced violation leaves its flight record next to the trail:
   [--flight FILE] picks the path, otherwise [<scenario>.flight]. *)
let dump_cx_flight flight_file default_path (cx : Check.counterexample) =
  if cx.Check.cx_flight <> "" then begin
    let path = Option.value flight_file ~default:default_path in
    let oc = open_out_bin path in
    output_string oc cx.Check.cx_flight;
    close_out oc;
    Printf.printf
      "flight record of the shrunk schedule written to %s (decode with repro \
       observe --load)\n%!"
      path
  end

(* Parallel-determinism smoke: [jobs:1] and [jobs:4] with the same seed
   must agree on the first-violating schedule, its message and its
   shrunk trail (part of @check-smoke). *)
let jobs_determinism_check ~seed =
  match Check.Scenarios.find "racy-flag" with
  | None -> true
  | Some s ->
      let go jobs =
        Check.run ~seed ~jobs ~faults:s.Check.Scenarios.sfaults
          ~budget:s.Check.Scenarios.sbudget ~strategy:Check.Random_walk
          s.Check.Scenarios.prog
      in
      let fingerprint (r : Check.report) =
        match r.Check.result with
        | `Ok -> None
        | `Violation cx ->
            Some
              ( cx.Check.cx_schedule,
                cx.Check.cx_message,
                Check.Trail.signature cx.Check.cx_trail )
      in
      let a = fingerprint (go 1) in
      let b = fingerprint (go 4) in
      let ok = a <> None && a = b in
      Printf.printf "%-12s %s  jobs=1 and jobs=4 agree on the counterexample\n%!"
        "jobs-determ"
        (if ok then "[as expected]" else "[UNEXPECTED]");
      ok

let check_main list_scenarios prog budget strategy seed faults jobs tag
    max_seconds replay trace_file flight_file =
  let fail msg =
    prerr_endline ("repro check: " ^ msg);
    exit 1
  in
  let scenario name =
    match Check.Scenarios.find name with
    | Some s -> s
    | None ->
        fail
          (Printf.sprintf "unknown scenario %S (have: %s)" name
             (String.concat ", " (Check.Scenarios.names ())))
  in
  if jobs <= 0 then fail (Printf.sprintf "--jobs %d (must be positive)" jobs);
  let cli_strategy =
    Option.map
      (fun s -> match parse_strategy s with Ok s -> s | Error m -> fail m)
      strategy
  in
  (* Scenarios built for a specific strategy (DPOR programs) pin it;
     an explicit --strategy wins, the default is random walk. *)
  let strategy_for (s : Check.Scenarios.t) =
    match (cli_strategy, s.Check.Scenarios.sstrategy) with
    | Some st, _ -> st
    | None, Some st -> st
    | None, None -> Check.Random_walk
  in
  let started = Unix.gettimeofday () in
  let check_wall_budget () =
    match max_seconds with
    | Some budget when Unix.gettimeofday () -. started > budget ->
        fail
          (Printf.sprintf "wall-clock budget exceeded (%.1fs > %.1fs)"
             (Unix.gettimeofday () -. started)
             budget)
    | _ -> ()
  in
  if list_scenarios then
    (* Sorted by name: stable output for golden tests. *)
    List.iter
      (fun name ->
        let s = Option.get (Check.Scenarios.find name) in
        Printf.printf "%-14s %s — %s (budget %d%s%s%s)\n" s.Check.Scenarios.sname
          (match s.Check.Scenarios.expect with
          | Check.Scenarios.Pass -> "pass"
          | Check.Scenarios.Fail -> "fail")
          s.Check.Scenarios.sdesc s.Check.Scenarios.sbudget
          (if s.Check.Scenarios.sfaults then ", faults" else "")
          (match s.Check.Scenarios.sstrategy with
          | Some st -> ", strategy " ^ Check.strategy_name st
          | None -> "")
          (match s.Check.Scenarios.stags with
          | [] -> ""
          | ts -> ", tags " ^ String.concat "+" ts))
      (Check.Scenarios.names ())
  else
    match replay with
    | Some rseed ->
        (* Replay one schedule by chooser seed; non-zero exit on
           violation so scripts can assert reproduction. *)
        let s = scenario (Option.value prog ~default:"deadlock") in
        let faults = faults || s.Check.Scenarios.sfaults in
        let r =
          Check.run ~seed:rseed ~faults ~budget:1 ~strategy:(strategy_for s)
            s.Check.Scenarios.prog
        in
        (match r.Check.result with
        | `Ok -> Printf.printf "replay of seed %d: no violation\n%!" rseed
        | `Violation cx ->
            print_endline (Check.describe cx);
            dump_cx_trace trace_file cx;
            dump_cx_flight flight_file
              (s.Check.Scenarios.sname ^ ".flight")
              cx;
            exit 2)
    | None -> (
        match prog with
        | Some name ->
            let s = scenario name in
            let budget =
              Option.value budget ~default:s.Check.Scenarios.sbudget
            in
            let faults = faults || s.Check.Scenarios.sfaults in
            let r =
              Check.run ~seed ~faults ~jobs ~budget ~strategy:(strategy_for s)
                s.Check.Scenarios.prog
            in
            (match r.Check.result with
            | `Violation cx ->
                print_endline (Check.describe cx);
                dump_cx_trace trace_file cx;
                dump_cx_flight flight_file (name ^ ".flight") cx
            | `Ok -> ());
            if
              not
                (verdict_line ~must_exhaust:s.Check.Scenarios.sexhaust name
                   s.Check.Scenarios.expect r)
            then exit 1
        | None ->
            (* Smoke mode: every (selected) scenario must reach its
               expected verdict within its committed budget. *)
            let scenarios =
              match tag with
              | Some t -> (
                  match Check.Scenarios.find_tag t with
                  | [] -> fail (Printf.sprintf "no scenario tagged %S" t)
                  | ss -> ss)
              | None -> Check.Scenarios.all
            in
            let ok =
              List.fold_left
                (fun acc s ->
                  let r =
                    Check.run ~seed ~faults:s.Check.Scenarios.sfaults ~jobs
                      ~budget:s.Check.Scenarios.sbudget
                      ~strategy:(strategy_for s) s.Check.Scenarios.prog
                  in
                  check_wall_budget ();
                  verdict_line ~must_exhaust:s.Check.Scenarios.sexhaust
                    s.Check.Scenarios.sname s.Check.Scenarios.expect r
                  && acc)
                true scenarios
            in
            let ok = if tag = None then jobs_determinism_check ~seed && ok else ok in
            check_wall_budget ();
            if not ok then exit 1)

let check =
  let doc =
    "Explore thread schedules and injected faults; catch deadlocks, lost \
     wakeups and atomicity violations with replayable counterexamples."
  in
  let list_scenarios =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenario registry.")
  in
  let prog =
    Arg.(
      value
      & opt (some string) None
      & info [ "prog" ] ~docv:"NAME"
          ~doc:"Check one scenario (see $(b,--list)); default: all of them.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:"Schedules to explore (default: the scenario's own budget).")
  in
  let strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "strategy" ] ~docv:"S"
          ~doc:
            "Exploration strategy: $(b,random), $(b,pct:D), $(b,dfs) or \
             $(b,dpor).  Default: the scenario's own strategy if it pins one \
             (DPOR programs), else $(b,random).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"Base chooser seed (default 1).")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Inject runtime faults: delayed/coalesced timer signals, KLT-pool \
             exhaustion, spurious futex wakeups, worker stalls.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Explore random/PCT schedules on $(docv) domains in parallel.  \
             The reported counterexample is identical for any job count.")
  in
  let tag =
    Arg.(
      value
      & opt (some string) None
      & info [ "tag" ] ~docv:"TAG"
          ~doc:
            "Smoke-check only the scenarios carrying $(docv) (e.g. \
             $(b,lock) for the lock-algorithm suite).")
  in
  let max_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:
            "Fail if the smoke run exceeds $(docv) seconds of wall clock \
             (CI time-budget guard).")
  in
  let replay =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:
            "Replay the single schedule with chooser seed $(docv); exit 2 if \
             it violates an invariant.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the Chrome trace of the shrunk failing schedule to $(docv).")
  in
  let flight_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"FILE"
          ~doc:
            "Where to write the binary flight record of the shrunk failing \
             schedule (default: $(i,SCENARIO).flight next to the trail); \
             decode with $(b,repro observe --load).")
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const check_main $ list_scenarios $ prog $ budget $ strategy $ seed
      $ faults $ jobs $ tag $ max_seconds $ replay $ trace_file $ flight_file)

let env =
  let doc = "Print the simulated machine configurations (paper Table 2)." in
  Cmd.v (Cmd.info "env" ~doc)
    Term.(
      const (fun () ->
          Format.printf "%a@." Oskern.Machine.pp Oskern.Machine.skylake;
          Format.printf "%a@." Oskern.Machine.pp Oskern.Machine.knl)
      $ const ())

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Reproduce the experiments of 'Lightweight Preemptive User-Level Threads' \
         (PPoPP'21) on a simulated substrate."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ fig4; fig6; table1; fig7; fig8; fig9; sec351; all; observe; serve; top_cmd; check; env ]))
